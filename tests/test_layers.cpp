#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/elementwise.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace bnn::nn {
namespace {

// Direct (definition-level) convolution used as an oracle for Conv2d.
Tensor naive_conv(const Tensor& x, const Tensor& w, const Tensor& b, int stride, int pad) {
  const int batch = x.size(0), in_c = x.size(1), h = x.size(2), wd = x.size(3);
  const int out_c = w.size(0), k = w.size(2);
  const int out_h = (h + 2 * pad - k) / stride + 1;
  const int out_w = (wd + 2 * pad - k) / stride + 1;
  Tensor y({batch, out_c, out_h, out_w});
  for (int n = 0; n < batch; ++n)
    for (int f = 0; f < out_c; ++f)
      for (int oh = 0; oh < out_h; ++oh)
        for (int ow = 0; ow < out_w; ++ow) {
          float acc = b.empty() ? 0.0f : b[f];
          for (int c = 0; c < in_c; ++c)
            for (int kh = 0; kh < k; ++kh)
              for (int kw = 0; kw < k; ++kw) {
                const int ih = oh * stride - pad + kh;
                const int iw = ow * stride - pad + kw;
                if (ih < 0 || ih >= h || iw < 0 || iw >= wd) continue;
                acc += x.v4(n, c, ih, iw) * w.v4(f, c, kh, kw);
              }
          y.v4(n, f, oh, ow) = acc;
        }
  return y;
}

struct ConvCase {
  int in_c, out_c, kernel, stride, pad, image;
};

class ConvForward : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvForward, MatchesNaiveConvolution) {
  const ConvCase cp = GetParam();
  util::Rng rng(17);
  Conv2d conv(cp.in_c, cp.out_c, cp.kernel, cp.stride, cp.pad);
  conv.init_kaiming(rng);
  for (std::int64_t i = 0; i < conv.bias().value.numel(); ++i)
    conv.bias().value[i] = static_cast<float>(rng.normal());
  Tensor x = Tensor::randn({2, cp.in_c, cp.image, cp.image}, rng);
  Tensor got = conv.forward(x);
  Tensor expected = naive_conv(x, conv.weight().value, conv.bias().value, cp.stride, cp.pad);
  ASSERT_TRUE(got.same_shape(expected)) << got.shape_string();
  EXPECT_LT(got.max_abs_diff(expected), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConvForward,
                         ::testing::Values(ConvCase{1, 4, 3, 1, 1, 8},
                                           ConvCase{3, 8, 5, 1, 2, 12},
                                           ConvCase{4, 6, 3, 2, 1, 9},
                                           ConvCase{2, 2, 1, 1, 0, 5},
                                           ConvCase{5, 7, 7, 2, 3, 14},
                                           ConvCase{6, 16, 5, 1, 0, 10}));

TEST(Conv2d, ShapeInference) {
  Conv2d conv(3, 8, 3, 2, 1);
  const std::vector<int> out = conv.out_shape({4, 3, 32, 32});
  EXPECT_EQ(out, (std::vector<int>{4, 8, 16, 16}));
  EXPECT_THROW(conv.out_shape({4, 5, 32, 32}), std::invalid_argument);
}

TEST(Conv2d, MacCount) {
  Conv2d conv(3, 8, 3, 1, 1);
  // 8 filters * 3 channels * 3*3 kernel * 32*32 positions = 221184 per image
  EXPECT_EQ(conv.macs({1, 3, 32, 32}), 221184);
  EXPECT_EQ(conv.macs({2, 3, 32, 32}), 2 * 221184);
}

TEST(Linear, MatchesManualProduct) {
  util::Rng rng(5);
  Linear fc(3, 2);
  fc.init_kaiming(rng);
  fc.bias().value[0] = 0.5f;
  fc.bias().value[1] = -1.0f;
  Tensor x = Tensor::from_values({1, 3}, {1.0f, 2.0f, 3.0f});
  Tensor y = fc.forward(x);
  const auto& w = fc.weight().value;
  EXPECT_NEAR(y.v2(0, 0), w.at({0, 0}) * 1 + w.at({0, 1}) * 2 + w.at({0, 2}) * 3 + 0.5f, 1e-5f);
  EXPECT_NEAR(y.v2(0, 1), w.at({1, 0}) * 1 + w.at({1, 1}) * 2 + w.at({1, 2}) * 3 - 1.0f, 1e-5f);
}

TEST(Linear, EquivalentToOneByOneConv) {
  util::Rng rng(5);
  Linear fc(6, 4);
  fc.init_kaiming(rng);
  Conv2d conv(6, 4, 1);
  for (std::int64_t i = 0; i < fc.weight().value.numel(); ++i)
    conv.weight().value[i] = fc.weight().value[i];
  Tensor x = Tensor::randn({3, 6}, rng);
  Tensor x_img = x.reshaped({3, 6, 1, 1});
  Tensor y_fc = fc.forward(x);
  Tensor y_conv = conv.forward(x_img).reshaped({3, 4});
  EXPECT_LT(y_fc.max_abs_diff(y_conv), 1e-4f);
}

TEST(BatchNorm, TrainingNormalizesBatch) {
  util::Rng rng(23);
  BatchNorm2d bn(3);
  bn.set_training(true);
  Tensor x = Tensor::randn({8, 3, 6, 6}, rng, 5.0f, 3.0f);
  Tensor y = bn.forward(x);
  for (int c = 0; c < 3; ++c) {
    double sum = 0.0, sum_sq = 0.0;
    for (int n = 0; n < 8; ++n)
      for (int h = 0; h < 6; ++h)
        for (int w = 0; w < 6; ++w) {
          const double v = y.v4(n, c, h, w);
          sum += v;
          sum_sq += v * v;
        }
    const double count = 8 * 6 * 6;
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / count, 1.0, 1e-3);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  bn.running_mean()[0] = 2.0f;
  bn.running_var()[0] = 4.0f;
  bn.gamma().value[0] = 3.0f;
  bn.beta().value[0] = 1.0f;
  bn.set_training(false);
  Tensor x = Tensor::full({1, 1, 2, 2}, 4.0f);
  Tensor y = bn.forward(x);
  // (4 - 2) / sqrt(4 + eps) * 3 + 1 ~= 4.0
  EXPECT_NEAR(y.v4(0, 0, 0, 0), 4.0f, 1e-3f);
}

TEST(BatchNorm, InferenceAffineMatchesEvalForward) {
  util::Rng rng(3);
  BatchNorm2d bn(4);
  // Push the module through a training step to move stats off defaults.
  bn.set_training(true);
  (void)bn.forward(Tensor::randn({4, 4, 5, 5}, rng, 2.0f, 1.5f));
  bn.set_training(false);

  std::vector<float> scale, shift;
  bn.inference_affine(scale, shift);
  Tensor x = Tensor::randn({2, 4, 3, 3}, rng);
  Tensor y = bn.forward(x);
  for (int n = 0; n < 2; ++n)
    for (int c = 0; c < 4; ++c)
      for (int h = 0; h < 3; ++h)
        for (int w = 0; w < 3; ++w)
          EXPECT_NEAR(y.v4(n, c, h, w),
                      scale[static_cast<std::size_t>(c)] * x.v4(n, c, h, w) +
                          shift[static_cast<std::size_t>(c)],
                      1e-4f);
}

TEST(ReLUTest, ClampsNegative) {
  ReLU relu;
  Tensor x = Tensor::from_values({1, 4}, {-2, -0.5f, 0, 3});
  Tensor y = relu.forward(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 0.0f);
  EXPECT_EQ(y[3], 3.0f);
}

TEST(SoftmaxTest, RowsSumToOneAndOrderPreserved) {
  Tensor logits = Tensor::from_values({2, 3}, {1, 2, 3, -1, -1, -1});
  Tensor probs = softmax_rows(logits);
  for (int n = 0; n < 2; ++n) {
    float sum = 0.0f;
    for (int k = 0; k < 3; ++k) sum += probs.v2(n, k);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(probs.v2(0, 2), probs.v2(0, 1));
  EXPECT_NEAR(probs.v2(1, 0), 1.0f / 3.0f, 1e-5f);
}

TEST(SoftmaxTest, StableForLargeLogits) {
  Tensor logits = Tensor::from_values({1, 2}, {1000.0f, 999.0f});
  Tensor probs = softmax_rows(logits);
  EXPECT_TRUE(std::isfinite(probs.v2(0, 0)));
  EXPECT_GT(probs.v2(0, 0), probs.v2(0, 1));
}

TEST(MaxPool, PicksWindowMaximum) {
  MaxPool2d pool(2);
  Tensor x = Tensor::from_values({1, 1, 4, 4},
                                 {1, 2, 5, 6, 3, 4, 7, 8, 9, 10, 13, 14, 11, 12, 15, 16});
  Tensor y = pool.forward(x);
  EXPECT_EQ(y.v4(0, 0, 0, 0), 4.0f);
  EXPECT_EQ(y.v4(0, 0, 0, 1), 8.0f);
  EXPECT_EQ(y.v4(0, 0, 1, 0), 12.0f);
  EXPECT_EQ(y.v4(0, 0, 1, 1), 16.0f);
}

TEST(AvgPool, AveragesWindow) {
  AvgPool2d pool(2);
  Tensor x = Tensor::from_values({1, 1, 2, 2}, {1, 3, 5, 7});
  Tensor y = pool.forward(x);
  EXPECT_EQ(y.size(2), 1);
  EXPECT_FLOAT_EQ(y.v4(0, 0, 0, 0), 4.0f);
}

TEST(GlobalAvgPoolTest, ReducesToOnePixel) {
  GlobalAvgPool pool;
  util::Rng rng(1);
  Tensor x = Tensor::randn({2, 3, 5, 5}, rng);
  Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 3, 1, 1}));
  double expected = 0.0;
  for (int i = 0; i < 25; ++i) expected += x.v4(1, 2, i / 5, i % 5);
  EXPECT_NEAR(y.v4(1, 2, 0, 0), expected / 25.0, 1e-4);
}

TEST(AddTest, SumsOperandsAndRejectsSingleInput) {
  Add add;
  Tensor a = Tensor::full({1, 2, 2, 2}, 1.0f);
  Tensor b = Tensor::full({1, 2, 2, 2}, 2.5f);
  Tensor y = add.forward2(a, b);
  EXPECT_FLOAT_EQ(y[0], 3.5f);
  EXPECT_THROW(add.forward(a), std::logic_error);
  Tensor c = Tensor::full({1, 2, 2, 3}, 0.0f);
  EXPECT_THROW(add.forward2(a, c), std::invalid_argument);
}

TEST(FlattenTest, CollapsesTrailingDims) {
  Flatten flatten;
  Tensor x = Tensor::randn({2, 3, 4, 5}, *[] { static util::Rng rng(2); return &rng; }());
  Tensor y = flatten.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 60}));
  EXPECT_EQ(y.v2(1, 0), x.v4(1, 0, 0, 0));
}

TEST(McDropoutTest, InactiveIsIdentity) {
  McDropout drop(0.5);
  util::Rng rng(4);
  Tensor x = Tensor::randn({2, 8, 3, 3}, rng);
  Tensor y = drop.forward(x);
  EXPECT_EQ(x.max_abs_diff(y), 0.0f);
}

TEST(McDropoutTest, ActiveMasksWholeChannels) {
  McDropout drop(0.5, /*seed=*/11);
  drop.set_active(true);
  util::Rng rng(4);
  Tensor x = Tensor::randn({1, 32, 4, 4}, rng, 10.0f, 0.5f);  // values far from 0
  Tensor y = drop.forward(x);
  const float keep_scale = 2.0f;
  int dropped = 0;
  for (int c = 0; c < 32; ++c) {
    const bool is_dropped = y.v4(0, c, 0, 0) == 0.0f;
    dropped += is_dropped ? 1 : 0;
    for (int h = 0; h < 4; ++h)
      for (int w = 0; w < 4; ++w) {
        if (is_dropped)
          EXPECT_EQ(y.v4(0, c, h, w), 0.0f);
        else
          EXPECT_NEAR(y.v4(0, c, h, w), x.v4(0, c, h, w) * keep_scale, 1e-4f);
      }
  }
  EXPECT_GT(dropped, 0);
  EXPECT_LT(dropped, 32);
}

TEST(McDropoutTest, ZeroProbabilityKeepsEverything) {
  McDropout drop(0.0);
  drop.set_active(true);
  util::Rng rng(4);
  Tensor x = Tensor::randn({2, 4, 3, 3}, rng);
  Tensor y = drop.forward(x);
  EXPECT_LT(x.max_abs_diff(y), 1e-6f);
}

TEST(McDropoutTest, ReseedReproducesMasks) {
  McDropout drop(0.25);
  drop.set_active(true);
  util::Rng rng(4);
  Tensor x = Tensor::randn({1, 64, 2, 2}, rng);
  drop.reseed(99);
  Tensor y1 = drop.forward(x);
  drop.reseed(99);
  Tensor y2 = drop.forward(x);
  EXPECT_EQ(y1.max_abs_diff(y2), 0.0f);
  Tensor y3 = drop.forward(x);  // stream has advanced -> different masks
  EXPECT_GT(y1.max_abs_diff(y3), 0.0f);
}

TEST(McDropoutTest, DropFrequencyNearP) {
  McDropout drop(0.25, /*seed=*/21);
  drop.set_active(true);
  Tensor x = Tensor::full({64, 64}, 1.0f);
  int dropped = 0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    Tensor y = drop.forward(x);
    for (std::int64_t i = 0; i < y.numel(); ++i) dropped += y[i] == 0.0f ? 1 : 0;
  }
  const double rate = static_cast<double>(dropped) / (trials * 64.0 * 64.0);
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(McDropoutTest, RejectsBadProbability) {
  EXPECT_THROW(McDropout(-0.1), std::invalid_argument);
  EXPECT_THROW(McDropout(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace bnn::nn
