// End-to-end integration: float training -> 8-bit quantization -> simulated
// accelerator, checked bit-exact against the integer reference executor.
#include "core/accelerator.h"

#include <gtest/gtest.h>

#include "core/software_metrics.h"
#include "data/synth.h"
#include "nn/activations.h"
#include "metrics/metrics.h"
#include "nn/models.h"
#include "train/trainer.h"

namespace bnn::core {
namespace {

struct Fixture {
  Fixture() {
    util::Rng rng(31);
    model = std::make_unique<nn::Model>(nn::make_tiny_cnn(rng, 10, 1, 12));
    util::Rng data_rng(32);
    data::Dataset digits = data::make_synth_digits(200, data_rng);
    nn::Tensor small({digits.size(), 1, 12, 12});
    for (int n = 0; n < digits.size(); ++n)
      for (int y = 0; y < 12; ++y)
        for (int x = 0; x < 12; ++x)
          small.v4(n, 0, y, x) = digits.images().v4(n, 0, 2 + 2 * y, 2 + 2 * x);
    dataset = std::make_unique<data::Dataset>(std::move(small), digits.labels(), 10);

    model->set_bayesian_last(0);
    train::TrainConfig config;
    config.epochs = 3;
    config.batch_size = 16;
    train::fit(*model, *dataset, config);
    qnet = std::make_unique<quant::QuantNetwork>(quant::quantize_model(*model, *dataset));
  }

  AcceleratorConfig accel_config(bool use_ic = true, std::uint64_t seed = 5) const {
    AcceleratorConfig config;
    config.nne.pc = 16;
    config.nne.pf = 8;
    config.nne.pv = 4;
    config.sampler_seed = seed;
    config.use_intermediate_caching = use_ic;
    return config;
  }

  std::unique_ptr<nn::Model> model;
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<quant::QuantNetwork> qnet;
};

Fixture& fixture() {
  static Fixture instance;
  return instance;
}

TEST(Accelerator, DeterministicPredictionMatchesReferenceBitExactly) {
  auto& fx = fixture();
  Accelerator accelerator(*fx.qnet, fx.accel_config());
  const data::Batch batch = fx.dataset->batch(0, 8);
  const auto prediction = accelerator.predict(batch.images, 0, 1);

  for (int n = 0; n < 8; ++n) {
    const quant::QTensor image = quant::quantize_image(batch.images, n, fx.qnet->input);
    const auto outputs = quant::ref_forward(*fx.qnet, image, 0, nullptr);
    const nn::Tensor probs = nn::softmax_rows(quant::ref_logits(*fx.qnet, outputs.back()));
    for (int k = 0; k < 10; ++k)
      EXPECT_EQ(prediction.probs.v2(n, k), probs.v2(0, k)) << "n=" << n << " k=" << k;
  }
}

TEST(Accelerator, StochasticPredictionMatchesReferenceWithSameSamplerSeed) {
  auto& fx = fixture();
  for (int bayes_layers : {1, 2, 3}) {
    Accelerator accelerator(*fx.qnet, fx.accel_config(true, 77));
    const data::Batch batch = fx.dataset->batch(0, 3);
    const auto prediction = accelerator.predict(batch.images, bayes_layers, 5);

    // Reference consumes the identical per-(image, sample) LFSR lanes.
    const auto lanes = [&fx](int image, int sample) -> std::unique_ptr<nn::MaskSource> {
      BernoulliSamplerConfig sampler_config;
      sampler_config.p = fx.qnet->dropout_p;
      sampler_config.pf = fx.accel_config().nne.pf;
      sampler_config.seed = Accelerator::sample_stream_seed(77, image, sample);
      return std::make_unique<BernoulliSampler>(sampler_config);
    };
    const nn::Tensor expected =
        quant::ref_mc_predict(*fx.qnet, batch.images, bayes_layers, 5, lanes, true);
    EXPECT_EQ(prediction.probs.max_abs_diff(expected), 0.0f) << "L=" << bayes_layers;
  }
}

TEST(Accelerator, IcAndNonIcProduceIdenticalPredictions) {
  auto& fx = fixture();
  Accelerator with_ic(*fx.qnet, fx.accel_config(true, 123));
  Accelerator without_ic(*fx.qnet, fx.accel_config(false, 123));
  const data::Batch batch = fx.dataset->batch(4, 3);
  const auto a = with_ic.predict(batch.images, 2, 7);
  const auto b = without_ic.predict(batch.images, 2, 7);
  EXPECT_EQ(a.probs.max_abs_diff(b.probs), 0.0f);
  // ... but IC is faster and lighter on memory.
  EXPECT_LT(a.stats.latency_ms, b.stats.latency_ms);
  EXPECT_LT(a.stats.ddr_bytes, b.stats.ddr_bytes);
}

TEST(Accelerator, FunctionalCyclesMatchAnalyticModel) {
  auto& fx = fixture();
  Accelerator accelerator(*fx.qnet, fx.accel_config(true, 9));
  const data::Batch batch = fx.dataset->batch(0, 1);
  const int bayes_layers = 2;
  const int samples = 4;
  (void)accelerator.predict(batch.images, bayes_layers, samples);

  // Expected: prefix layers once + suffix layers per sample (pure PE
  // cycles, no pipeline fill — the fill lives in the latency model).
  const nn::NetworkDesc desc = fx.qnet->describe();
  const int cut = desc.cut_layer_for(bayes_layers);
  std::int64_t expected = 0;
  for (int l = 0; l < desc.num_layers(); ++l) {
    const std::int64_t cycles =
        estimate_layer_cycles(desc.layers[static_cast<std::size_t>(l)],
                              accelerator.config().nne);
    expected += l <= cut ? cycles : cycles * samples;
  }
  EXPECT_EQ(accelerator.last_functional_compute_cycles(), expected);
}

TEST(Accelerator, QuantizedBnnAccuracyRemainsUseful) {
  auto& fx = fixture();
  Accelerator accelerator(*fx.qnet, fx.accel_config());
  const auto prediction = accelerator.predict(fx.dataset->images(), 2, 8);
  const double accuracy = metrics::accuracy(prediction.probs, fx.dataset->labels());
  EXPECT_GT(accuracy, 0.3);  // trained tiny net, int8, MCD: well above chance
}

TEST(Accelerator, ResourceReportFitsDevice) {
  auto& fx = fixture();
  Accelerator accelerator(*fx.qnet, fx.accel_config());
  const ResourceUsage usage = accelerator.resources(arria10_sx660());
  EXPECT_TRUE(fits(usage, arria10_sx660()));
  EXPECT_EQ(usage.multipliers, 16 * 8 * 4);
}

TEST(Accelerator, LaneArenaIsAllocationFreeAndBitIdenticalAfterWarmup) {
  auto& fx = fixture();
  // num_threads defaults to 1, so every lane runs on this thread and the
  // thread-local arena counter observes all of them.
  Accelerator accelerator(*fx.qnet, fx.accel_config(true, 55));
  const data::Batch batch = fx.dataset->batch(0, 4);
  const auto warm = accelerator.predict(batch.images, 2, 6);

  const std::uint64_t after_warmup = Accelerator::lane_arena_grow_events();
  Accelerator::Prediction repeat_prediction = accelerator.predict(batch.images, 2, 6);
  for (int i = 0; i < 2; ++i)
    repeat_prediction = accelerator.predict(batch.images, 2, 6);
  EXPECT_EQ(Accelerator::lane_arena_grow_events(), after_warmup)
      << "steady-state predict lanes must not allocate arena storage";

  // Reused arena storage (outputs, scratch, reseeded sampler) must not leak
  // state between calls: the repeat prediction is bit-identical to the
  // first, and to a fresh accelerator with a cold arena-independent config.
  EXPECT_EQ(warm.probs.max_abs_diff(repeat_prediction.probs), 0.0f);
  Accelerator fresh(*fx.qnet, fx.accel_config(true, 55));
  const auto cold = fresh.predict(batch.images, 2, 6);
  EXPECT_EQ(warm.probs.max_abs_diff(cold.probs), 0.0f);
}

TEST(Accelerator, SampleOffsetShiftsTheSamplerLaneWindow) {
  auto& fx = fixture();
  const std::uint64_t seed = 91;
  Accelerator accelerator(*fx.qnet, fx.accel_config(true, seed));
  const data::Batch batch = fx.dataset->batch(0, 2);
  const int bayes_layers = 2;
  const int offset = 4;
  std::vector<Accelerator::ImageRequest> requests;
  for (int n = 0; n < 2; ++n)
    requests.push_back({bayes_layers, 3, static_cast<std::uint64_t>(n), offset});
  const auto shifted = accelerator.predict_batch(batch.images, requests);

  // A request with sample_offset k must consume exactly the lanes
  // sample_stream_seed(seed, stream, k + s) — the tail window of the
  // single-request lane family, which is what lets the serving layer's
  // escalation-reuse mode run only the NEW samples of an escalated request.
  const auto lanes = [&fx, seed, offset](int image, int sample) {
    BernoulliSamplerConfig sampler_config;
    sampler_config.p = fx.qnet->dropout_p;
    sampler_config.pf = fx.accel_config().nne.pf;
    sampler_config.seed = Accelerator::sample_stream_seed(
        seed, static_cast<std::uint64_t>(image), offset + sample);
    return std::make_unique<BernoulliSampler>(sampler_config);
  };
  const nn::Tensor expected =
      quant::ref_mc_predict(*fx.qnet, batch.images, bayes_layers, 3, lanes, true);
  EXPECT_EQ(shifted.probs.max_abs_diff(expected), 0.0f);
}

TEST(Accelerator, KernelTiersProduceBitIdenticalPredictions) {
  auto& fx = fixture();
  const data::Batch batch = fx.dataset->batch(0, 3);

  // Trained weights are not binarizable, so bitpack demotes everywhere —
  // the cap must be a no-op.
  const auto with_tier = [&fx](nn::kernels::Tier tier, const quant::QuantNetwork& net,
                               const nn::Tensor& images) {
    AcceleratorConfig config = fx.accel_config(true, 66);
    config.kernel_tier = tier;
    Accelerator accelerator(net, config);
    return accelerator.predict(images, 2, 5);
  };
  const auto scalar = with_tier(nn::kernels::Tier::scalar, *fx.qnet, batch.images);
  const auto int8 = with_tier(nn::kernels::Tier::int8, *fx.qnet, batch.images);
  const auto bitpack = with_tier(nn::kernels::Tier::bitpack, *fx.qnet, batch.images);
  EXPECT_EQ(scalar.probs.max_abs_diff(int8.probs), 0.0f);
  EXPECT_EQ(int8.probs.max_abs_diff(bitpack.probs), 0.0f);

  // Force the packed path to actually engage: binarize the first conv's
  // weights and feed a two-valued image batch (the Accelerator ctor
  // re-annotates the network).
  quant::QuantNetwork binarized = *fx.qnet;
  for (auto& w : binarized.layers.front().weights)
    w = static_cast<std::int8_t>(w >= 0 ? 3 : -3);
  ASSERT_TRUE(quant::layer_weights_binarizable(binarized.layers.front()));
  util::Rng rng(67);
  nn::Tensor two_valued({3, 1, 12, 12});
  for (std::int64_t i = 0; i < two_valued.numel(); ++i)
    two_valued.data()[i] = rng.uniform_int(0, 1) != 0 ? 1.0f : 0.0f;
  const quant::QTensor qimage = quant::quantize_image(two_valued, 0, binarized.input);
  std::int8_t lo = 0, hi = 0;
  ASSERT_TRUE(quant::two_valued_activations(qimage, &lo, &hi));

  const auto b_scalar = with_tier(nn::kernels::Tier::scalar, binarized, two_valued);
  const auto b_int8 = with_tier(nn::kernels::Tier::int8, binarized, two_valued);
  const auto b_bitpack = with_tier(nn::kernels::Tier::bitpack, binarized, two_valued);
  EXPECT_EQ(b_scalar.probs.max_abs_diff(b_int8.probs), 0.0f);
  EXPECT_EQ(b_int8.probs.max_abs_diff(b_bitpack.probs), 0.0f);
}

TEST(Accelerator, RejectsBadArguments) {
  auto& fx = fixture();
  Accelerator accelerator(*fx.qnet, fx.accel_config());
  const data::Batch batch = fx.dataset->batch(0, 1);
  EXPECT_THROW(accelerator.predict(batch.images, -1, 5), std::invalid_argument);
  EXPECT_THROW(accelerator.predict(batch.images, 99, 5), std::invalid_argument);
  EXPECT_THROW(accelerator.predict(batch.images, 1, 0), std::invalid_argument);
}

TEST(SoftwareMetrics, ProviderProducesSaneMetricsAndCaches) {
  auto& fx = fixture();
  util::Rng noise_rng(3);
  const data::Dataset noise = data::make_gaussian_noise(32, *fx.dataset, noise_rng);
  const data::Dataset test = fx.dataset->subset(0, 64);
  SoftwareMetricsProvider provider(*fx.model, test, noise);

  const MetricPoint a = provider.evaluate(2, 5);
  EXPECT_GT(a.accuracy, 0.2);
  EXPECT_LE(a.accuracy, 1.0);
  EXPECT_GT(a.ape, 0.0);
  EXPECT_LT(a.ape, std::log(10.0) + 1e-9);
  EXPECT_GE(a.ece, 0.0);
  EXPECT_LE(a.ece, 1.0);

  // Cached: identical object on repeat.
  const MetricPoint b = provider.evaluate(2, 5);
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.ape, b.ape);
  EXPECT_EQ(a.ece, b.ece);
}

}  // namespace
}  // namespace bnn::core
