// The bit-packed XNOR/popcount kernel tier must be bit-identical to the
// int8 and scalar tiers at every level: the word primitives against naive
// bit loops, packed_row_dot against dot_i8_zp, and the full layer
// executors (quant/qops and core/nne) across edge-case geometries. Also
// pins the tier-dependent cycle model and the sampler reseed contract the
// accelerator's lane arena relies on.
#include "nn/bitpack_kernels.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/bernoulli_sampler.h"
#include "core/nne.h"
#include "nn/gemm_kernels.h"
#include "quant/qops.h"
#include "quant/qplan.h"
#include "serve/cost_model.h"
#include "util/rng.h"

namespace bnn {
namespace {

namespace kernels = nn::kernels;
using kernels::Tier;

std::vector<std::int8_t> random_two_valued(util::Rng& rng, int len, std::int8_t lo,
                                           std::int8_t hi) {
  std::vector<std::int8_t> x(static_cast<std::size_t>(len));
  for (auto& v : x) v = rng.uniform_int(0, 1) != 0 ? hi : lo;
  return x;
}

TEST(BitpackKernels, PackRoundTripAndTailBits) {
  util::Rng rng(301);
  for (const int len : {1, 63, 64, 65, 128, 1000, 1152}) {
    const std::int8_t lo = -7, hi = 9;
    const std::vector<std::int8_t> x = random_two_valued(rng, len, lo, hi);
    std::vector<std::uint64_t> bits(static_cast<std::size_t>(kernels::bit_words(len)),
                                    ~std::uint64_t{0});  // dirty buffer: pack must clear
    const std::int32_t pop = kernels::pack_eq_bits(x.data(), len, hi, bits.data());

    std::int32_t expected_pop = 0;
    for (int t = 0; t < len; ++t) {
      const bool set = x[static_cast<std::size_t>(t)] == hi;
      expected_pop += set ? 1 : 0;
      EXPECT_EQ(kernels::get_bit(bits.data(), t), set) << "len " << len << " bit " << t;
    }
    EXPECT_EQ(pop, expected_pop) << "len " << len;
    // Tail bits past len must be zero (the XOR identities depend on it).
    for (int t = len; t < kernels::bit_words(len) * kernels::kBitWordBits; ++t)
      EXPECT_FALSE(kernels::get_bit(bits.data(), t)) << "len " << len << " tail bit " << t;
  }
}

TEST(BitpackKernels, GatherPackMatchesDirectPackOfGatheredCopy) {
  util::Rng rng(302);
  for (const int len : {5, 64, 200, 1152}) {
    const std::int8_t lo = -3, hi = 2;
    const std::vector<std::int8_t> x = random_two_valued(rng, 4 * len, lo, hi);
    std::vector<std::int32_t> offsets(static_cast<std::size_t>(len));
    for (auto& o : offsets) o = rng.uniform_int(0, 4 * len - 1);

    std::vector<std::int8_t> gathered(static_cast<std::size_t>(len));
    for (int t = 0; t < len; ++t)
      gathered[static_cast<std::size_t>(t)] =
          x[static_cast<std::size_t>(offsets[static_cast<std::size_t>(t)])];

    const int words = kernels::bit_words(len);
    std::vector<std::uint64_t> direct(static_cast<std::size_t>(words));
    std::vector<std::uint64_t> gather(static_cast<std::size_t>(words));
    const std::int32_t pop_direct =
        kernels::pack_eq_bits(gathered.data(), len, hi, direct.data());
    const std::int32_t pop_gather =
        kernels::pack_eq_bits_gather(x.data(), offsets.data(), len, hi, gather.data());
    EXPECT_EQ(direct, gather) << "len " << len;
    EXPECT_EQ(pop_direct, pop_gather);
  }
}

TEST(BitpackKernels, PopcountPrimitivesMatchNaiveLoops) {
  util::Rng rng(303);
  for (const int words : {1, 2, 7, 18}) {
    std::vector<std::uint64_t> a(static_cast<std::size_t>(words)),
        b(static_cast<std::size_t>(words)), c(static_cast<std::size_t>(words));
    for (auto& w : a)
      w = (static_cast<std::uint64_t>(rng.uniform_int(0, 0x7fffffff)) << 33) ^
          static_cast<std::uint64_t>(rng.uniform_int(0, 0x7fffffff));
    for (auto& w : b)
      w = (static_cast<std::uint64_t>(rng.uniform_int(0, 0x7fffffff)) << 31) ^
          static_cast<std::uint64_t>(rng.uniform_int(0, 0x7fffffff));
    // c disjoint from b (the ternary plus/minus masks never overlap).
    for (int i = 0; i < words; ++i)
      c[static_cast<std::size_t>(i)] = ~b[static_cast<std::size_t>(i)] &
                                       a[static_cast<std::size_t>(i)];

    std::int32_t pop = 0, pxor = 0, pand = 0;
    for (int i = 0; i < words; ++i) {
      pop += std::popcount(a[static_cast<std::size_t>(i)]);
      pxor += std::popcount(a[static_cast<std::size_t>(i)] ^ b[static_cast<std::size_t>(i)]);
      pand += std::popcount(a[static_cast<std::size_t>(i)] & b[static_cast<std::size_t>(i)]);
    }
    EXPECT_EQ(kernels::popcount_words(a.data(), words), pop);
    EXPECT_EQ(kernels::popcount_xor(a.data(), b.data(), words), pxor);
    EXPECT_EQ(kernels::popcount_and(a.data(), b.data(), words), pand);

    std::int32_t pb = -1, mb = -1;
    kernels::popcount_and2(a.data(), b.data(), c.data(), words, &pb, &mb);
    EXPECT_EQ(pb, kernels::popcount_and(a.data(), b.data(), words));
    EXPECT_EQ(mb, kernels::popcount_and(a.data(), c.data(), words));
  }
}

// A binarizable linear layer mixing per-row magnitudes, a minus-only
// W = 128 row (the one magnitude int8 can only reach negatively), and an
// all-zero row.
quant::QLayer make_binarizable_linear(util::Rng& rng, int rows, int len, bool pure_binary) {
  quant::QLayer layer;
  layer.geom.op = nn::HwLayer::Op::linear;
  layer.geom.in_c = len;
  layer.geom.out_c = rows;
  layer.weights.resize(static_cast<std::size_t>(rows) * len);
  const std::int32_t magnitudes[] = {1, 5, 127};
  for (int f = 0; f < rows; ++f) {
    std::int8_t* w = layer.weights.data() + static_cast<std::size_t>(f) * len;
    if (!pure_binary && f == rows - 1) {
      // Minus-only W=128 row with zeros sprinkled in.
      for (int t = 0; t < len; ++t)
        w[t] = rng.uniform_int(0, 2) != 0 ? static_cast<std::int8_t>(-128)
                                          : static_cast<std::int8_t>(0);
      continue;
    }
    if (!pure_binary && f == rows - 2) {
      for (int t = 0; t < len; ++t) w[t] = 0;  // all-zero row (W = 0)
      continue;
    }
    const std::int32_t mag = magnitudes[f % 3];
    for (int t = 0; t < len; ++t) {
      const int pick = rng.uniform_int(0, pure_binary ? 1 : 2);
      w[t] = static_cast<std::int8_t>(pick == 0 ? -mag : pick == 1 ? mag : 0);
    }
  }
  layer.bias.assign(static_cast<std::size_t>(rows), 0);
  layer.weight_scales.assign(static_cast<std::size_t>(rows), 1.0f);
  layer.requant.assign(static_cast<std::size_t>(rows), quant::quantize_multiplier(0.02));
  layer.post_add.assign(static_cast<std::size_t>(rows), 0);
  return layer;
}

TEST(PackedRowDot, EqualsInt8DotOverRandomBinarizableRows) {
  util::Rng rng(304);
  for (const int len : {1, 64, 130, 1152}) {
    for (const bool pure_binary : {true, false}) {
      const int rows = 8;
      const quant::QLayer layer = make_binarizable_linear(rng, rows, len, pure_binary);
      const quant::LayerExecPlan plan = quant::build_layer_exec_plan(layer);
      ASSERT_TRUE(plan.weights_binarizable);
      EXPECT_EQ(plan.pure_binary, pure_binary);

      // Extreme activation pairs (including full-range) and zero points.
      const struct {
        std::int8_t lo, hi;
        std::int32_t zp;
      } cases[] = {{-128, 127, 0}, {-128, 127, -128}, {-7, 9, -3}, {0, 1, 5}, {4, 4, -2}};
      for (const auto& c : cases) {
        std::vector<std::int8_t> x(static_cast<std::size_t>(len));
        for (auto& v : x) v = rng.uniform_int(0, 1) != 0 ? c.hi : c.lo;
        std::vector<std::uint64_t> xbits(static_cast<std::size_t>(plan.words));
        const std::int32_t x_pop = kernels::pack_eq_bits(x.data(), len, c.hi, xbits.data());
        const std::int32_t base = static_cast<std::int32_t>(c.lo) - c.zp;
        const std::int32_t delta = static_cast<std::int32_t>(c.hi) - c.lo;
        for (int f = 0; f < rows; ++f) {
          EXPECT_EQ(quant::packed_row_dot(plan, f, xbits.data(), x_pop, base, delta),
                    kernels::dot_i8_zp(x.data(), layer.weight_row(f), len, c.zp))
              << "len " << len << " pure_binary " << pure_binary << " row " << f << " lo "
              << static_cast<int>(c.lo) << " hi " << static_cast<int>(c.hi) << " zp "
              << c.zp;
        }
      }
    }
  }
}

TEST(WeightBinarizability, StaticRulesAndTermBound) {
  util::Rng rng(305);
  quant::QLayer good = make_binarizable_linear(rng, 4, 100, false);
  EXPECT_TRUE(quant::layer_weights_binarizable(good));

  // Two distinct nonzero magnitudes in one row break binarizability.
  quant::QLayer mixed = good;
  mixed.weights[0] = 3;
  mixed.weights[1] = 7;
  EXPECT_FALSE(quant::layer_weights_binarizable(mixed));

  // Term count past the int32 overflow bound is rejected statically.
  quant::QLayer wide;
  wide.geom.op = nn::HwLayer::Op::linear;
  wide.geom.in_c = quant::kMaxBinarizableTerms + 1;
  wide.geom.out_c = 1;
  wide.weights.assign(static_cast<std::size_t>(wide.geom.in_c), 1);
  EXPECT_FALSE(quant::layer_weights_binarizable(wide));
  wide.geom.in_c = quant::kMaxBinarizableTerms;
  wide.weights.assign(static_cast<std::size_t>(wide.geom.in_c), 1);
  EXPECT_TRUE(quant::layer_weights_binarizable(wide));
}

TEST(WeightBinarizability, AnnotateStampsTheGeometry) {
  util::Rng rng(306);
  quant::QuantNetwork net;
  net.layers.push_back(make_binarizable_linear(rng, 4, 50, true));
  quant::QLayer plain = make_binarizable_linear(rng, 4, 50, true);
  plain.weights[3] = 2;  // second magnitude in row 0
  net.layers.push_back(std::move(plain));
  quant::annotate_weight_tiers(net);
  EXPECT_TRUE(net.layers[0].geom.weights_binarizable);
  EXPECT_FALSE(net.layers[1].geom.weights_binarizable);
}

TEST(TwoValuedActivations, DetectsUpToTwoDistinctValues) {
  quant::QTensor x({2, 2, 2}, quant::QuantParams{1.0f, 0});
  std::int8_t lo = 0, hi = 0;
  x.data = {5, 5, 5, 5, 5, 5, 5, 5};
  EXPECT_TRUE(quant::two_valued_activations(x, &lo, &hi));
  EXPECT_EQ(lo, 5);
  EXPECT_EQ(hi, 5);
  x.data = {9, -4, 9, 9, -4, -4, 9, -4};
  EXPECT_TRUE(quant::two_valued_activations(x, &lo, &hi));
  EXPECT_EQ(lo, -4);
  EXPECT_EQ(hi, 9);
  x.data[5] = 0;  // third value
  EXPECT_FALSE(quant::two_valued_activations(x, &lo, &hi));
}

// --- full-layer tier identity ----------------------------------------------

struct ConvSpec {
  int in_c, in_h, in_w, out_c, kernel, stride, pad;
  bool relu = false;
  int pool_kernel = 0;  // 0: none (pool_stride = pool_kernel)
  bool shortcut = false;
  bool ternary = true;
};

quant::QLayer make_binarizable_conv(util::Rng& rng, const ConvSpec& spec) {
  quant::QLayer layer;
  nn::HwLayer& g = layer.geom;
  g.op = nn::HwLayer::Op::conv;
  g.in_c = spec.in_c;
  g.in_h = spec.in_h;
  g.in_w = spec.in_w;
  g.out_c = spec.out_c;
  g.kernel = spec.kernel;
  g.stride = spec.stride;
  g.pad = spec.pad;
  g.conv_out_h = (spec.in_h + 2 * spec.pad - spec.kernel) / spec.stride + 1;
  g.conv_out_w = (spec.in_w + 2 * spec.pad - spec.kernel) / spec.stride + 1;
  g.has_relu = spec.relu;
  g.has_shortcut = spec.shortcut;
  if (spec.pool_kernel > 0) {
    g.pool_kernel = spec.pool_kernel;
    g.pool_stride = spec.pool_kernel;
    g.out_h = (g.conv_out_h - g.pool_kernel) / g.pool_stride + 1;
    g.out_w = (g.conv_out_w - g.pool_kernel) / g.pool_stride + 1;
  } else {
    g.out_h = g.conv_out_h;
    g.out_w = g.conv_out_w;
  }

  const int terms = spec.in_c * spec.kernel * spec.kernel;
  layer.weights.resize(static_cast<std::size_t>(spec.out_c) * terms);
  const std::int32_t magnitudes[] = {1, 4, 127};
  for (int f = 0; f < spec.out_c; ++f) {
    const std::int32_t mag = magnitudes[f % 3];
    std::int8_t* w = layer.weights.data() + static_cast<std::size_t>(f) * terms;
    for (int t = 0; t < terms; ++t) {
      const int pick = rng.uniform_int(0, spec.ternary ? 2 : 1);
      w[t] = static_cast<std::int8_t>(pick == 0 ? -mag : pick == 1 ? mag : 0);
    }
  }
  layer.bias.resize(static_cast<std::size_t>(spec.out_c));
  for (auto& b : layer.bias) b = rng.uniform_int(-200, 200);
  layer.weight_scales.assign(static_cast<std::size_t>(spec.out_c), 1.0f);
  layer.requant.resize(static_cast<std::size_t>(spec.out_c));
  for (int f = 0; f < spec.out_c; ++f)
    layer.requant[static_cast<std::size_t>(f)] =
        quant::quantize_multiplier(0.01 + 0.005 * (f % 5));
  layer.post_add.resize(static_cast<std::size_t>(spec.out_c));
  for (auto& p : layer.post_add) p = rng.uniform_int(-4, 4);
  layer.in = quant::QuantParams{0.05f, -3};
  layer.out = quant::QuantParams{0.1f, 4};
  layer.shortcut_rescale = quant::quantize_multiplier(0.5);
  return layer;
}

void expect_tier_identity(const quant::QLayer& layer, const quant::QTensor& input,
                          const quant::QTensor* shortcut, const char* label) {
  const quant::LayerExecPlan plan = quant::build_layer_exec_plan(layer);
  ASSERT_TRUE(plan.weights_binarizable) << label;
  std::int8_t lo = 0, hi = 0;
  ASSERT_TRUE(quant::two_valued_activations(input, &lo, &hi)) << label;

  const quant::FixedMultiplier keep = quant::quantize_multiplier(1.0 / 0.75);
  const quant::QTensor scalar =
      quant::ref_run_layer(layer, plan, Tier::scalar, input, shortcut, false, nullptr, keep);
  const quant::QTensor int8 =
      quant::ref_run_layer(layer, plan, Tier::int8, input, shortcut, false, nullptr, keep);
  const quant::QTensor bitpack =
      quant::ref_run_layer(layer, plan, Tier::bitpack, input, shortcut, false, nullptr, keep);
  EXPECT_EQ(scalar.data, int8.data) << label << ": scalar vs int8";
  EXPECT_EQ(int8.data, bitpack.data) << label << ": int8 vs bitpack";

  // The NNE tiling must agree with the reference at every tier and charge
  // the closed-form cycle count for both annotation states.
  for (const auto& tc : {std::array<int, 3>{8, 8, 1}, std::array<int, 3>{64, 64, 1},
                         std::array<int, 3>{16, 8, 4}, std::array<int, 3>{128, 128, 16}}) {
    core::NneConfig config;
    config.pc = tc[0];
    config.pf = tc[1];
    config.pv = tc[2];
    for (const bool annotated : {false, true}) {
      quant::QLayer geom_layer = layer;
      geom_layer.geom.weights_binarizable = annotated;
      for (const Tier tier : {Tier::scalar, Tier::int8, Tier::bitpack}) {
        core::NneScratch scratch;
        quant::QTensor out;
        const core::NneLayerStats stats =
            core::nne_run_layer_into(geom_layer, plan, input, shortcut, false, nullptr, keep,
                                     config, tier, scratch, out);
        EXPECT_EQ(out.data, int8.data)
            << label << ": nne tier " << nn::kernels::tier_name(tier) << " PC=" << tc[0]
            << " PF=" << tc[1] << " PV=" << tc[2];
        EXPECT_EQ(stats.compute_cycles,
                  core::estimate_layer_cycles(geom_layer.geom, config))
            << label << ": cycles, annotated=" << annotated;
        EXPECT_EQ(stats.macs_retired, geom_layer.geom.macs());
      }
    }
  }
}

TEST(TierIdentity, LinearLayersIncludingPartialTailWord) {
  util::Rng rng(307);
  for (const int len : {64, 130, 300}) {
    for (const bool pure_binary : {true, false}) {
      quant::QLayer layer = make_binarizable_linear(rng, 10, len, pure_binary);
      layer.in = quant::QuantParams{0.05f, -3};
      layer.out = quant::QuantParams{0.1f, 4};
      for (auto& b : layer.bias) b = rng.uniform_int(-200, 200);
      quant::QTensor input({len, 1, 1}, layer.in);
      for (auto& v : input.data) v = rng.uniform_int(0, 1) != 0 ? 9 : -7;
      expect_tier_identity(layer, input, nullptr, "linear");
    }
  }
}

TEST(TierIdentity, ConvEdgeGeometries) {
  util::Rng rng(308);
  const struct {
    const char* label;
    ConvSpec spec;
  } cases[] = {
      {"k3 pad1 stride2 odd map", {3, 5, 7, 4, 3, 2, 1}},
      {"single channel k1", {1, 5, 5, 6, 1, 1, 0, false, 0, false, false}},
      {"relu + maxpool", {4, 8, 8, 5, 3, 1, 0, true, 2}},
      {"terms not word multiple", {13, 6, 6, 3, 3, 1, 1}},  // 117 terms
      {"pure binary k3", {8, 7, 7, 4, 3, 1, 1, false, 0, false, false}},
  };
  for (const auto& c : cases) {
    const quant::QLayer layer = make_binarizable_conv(rng, c.spec);
    quant::QTensor input({c.spec.in_c, c.spec.in_h, c.spec.in_w}, layer.in);
    for (auto& v : input.data) v = rng.uniform_int(0, 1) != 0 ? 6 : -2;
    expect_tier_identity(layer, input, nullptr, c.label);
  }
}

TEST(TierIdentity, ConvWithShortcutOperand) {
  util::Rng rng(309);
  ConvSpec spec{3, 6, 6, 4, 3, 1, 1};
  spec.shortcut = true;
  const quant::QLayer layer = make_binarizable_conv(rng, spec);
  quant::QTensor input({3, 6, 6}, layer.in);
  for (auto& v : input.data) v = rng.uniform_int(0, 1) != 0 ? 6 : -2;
  // The shortcut operand is NOT tier-constrained — arbitrary int8 values.
  quant::QTensor shortcut({4, 6, 6}, quant::QuantParams{0.2f, 7});
  for (auto& v : shortcut.data) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  expect_tier_identity(layer, input, &shortcut, "conv + shortcut");
}

TEST(TierIdentity, BitpackCapFallsBackOnThreeValuedInput) {
  util::Rng rng(310);
  const quant::QLayer layer = make_binarizable_conv(rng, ConvSpec{3, 6, 6, 4, 3, 1, 1});
  const quant::LayerExecPlan plan = quant::build_layer_exec_plan(layer);
  quant::QTensor input({3, 6, 6}, layer.in);
  for (auto& v : input.data) v = static_cast<std::int8_t>(rng.uniform_int(-5, 5));
  std::int8_t lo = 0, hi = 0;
  ASSERT_FALSE(quant::two_valued_activations(input, &lo, &hi));

  const quant::FixedMultiplier keep = quant::quantize_multiplier(1.0 / 0.75);
  const quant::QTensor int8 =
      quant::ref_run_layer(layer, plan, Tier::int8, input, nullptr, false, nullptr, keep);
  const quant::QTensor capped =
      quant::ref_run_layer(layer, plan, Tier::bitpack, input, nullptr, false, nullptr, keep);
  EXPECT_EQ(int8.data, capped.data);

  core::NneConfig config;
  core::NneScratch scratch;
  quant::QTensor out;
  core::nne_run_layer_into(layer, plan, input, nullptr, false, nullptr, keep, config,
                           Tier::bitpack, scratch, out);
  EXPECT_EQ(out.data, int8.data);
}

TEST(NneScratchArena, SecondRunOverSameShapesIsAllocationFree) {
  util::Rng rng(311);
  const quant::QLayer conv = make_binarizable_conv(rng, ConvSpec{4, 8, 8, 5, 3, 1, 1});
  const quant::LayerExecPlan plan = quant::build_layer_exec_plan(conv);
  quant::QTensor input({4, 8, 8}, conv.in);
  for (auto& v : input.data) v = rng.uniform_int(0, 1) != 0 ? 6 : -2;
  const quant::FixedMultiplier keep = quant::quantize_multiplier(1.0 / 0.75);

  core::NneConfig config;
  core::NneScratch scratch;
  quant::QTensor out;
  core::nne_run_layer_into(conv, plan, input, nullptr, false, nullptr, keep, config,
                           Tier::bitpack, scratch, out);
  const std::uint64_t after_warmup = scratch.grow_events;
  EXPECT_GT(after_warmup, 0u);
  for (int i = 0; i < 3; ++i)
    core::nne_run_layer_into(conv, plan, input, nullptr, false, nullptr, keep, config,
                             Tier::bitpack, scratch, out);
  EXPECT_EQ(scratch.grow_events, after_warmup);
}

// --- tier-aware cycle/cost model -------------------------------------------

TEST(BinaryCycleModel, AnnotationCreditsTermParallelism) {
  nn::HwLayer layer;
  layer.op = nn::HwLayer::Op::conv;
  layer.in_c = 128;
  layer.out_c = 128;
  layer.kernel = 3;
  layer.conv_out_h = 14;
  layer.conv_out_w = 14;
  core::NneConfig config;
  config.pc = 8;
  config.pf = 8;
  config.pv = 1;
  // 1152 terms: ceil(1152/8) = 144 tiles plain, ceil(1152/64) = 18 binary.
  const std::int64_t plain = core::estimate_layer_cycles(layer, config);
  layer.weights_binarizable = true;
  const std::int64_t binary = core::estimate_layer_cycles(layer, config);
  EXPECT_EQ(plain, 16LL * 144 * 196);
  EXPECT_EQ(binary, 16LL * 18 * 196);
}

TEST(BinaryCycleModel, CostModelChargesBinarizableLayersLess) {
  nn::NetworkDesc desc;
  desc.name = "binary-vs-plain";
  desc.input_shape = {128, 16, 16};
  desc.num_classes = 10;
  nn::HwLayer layer;
  layer.op = nn::HwLayer::Op::conv;
  layer.in_c = 128;
  layer.in_h = 16;
  layer.in_w = 16;
  layer.out_c = 128;
  layer.kernel = 3;
  layer.stride = 1;
  layer.pad = 1;
  layer.conv_out_h = 16;
  layer.conv_out_w = 16;
  layer.out_h = 16;
  layer.out_w = 16;
  layer.is_bayes_site = true;
  layer.site_index = 0;
  desc.layers.push_back(layer);

  core::PerfConfig config;
  config.nne.pc = 8;
  config.nne.pf = 8;
  config.nne.pv = 1;
  const double plain_ms =
      core::estimate_mc(desc, config, /*bayes_layers=*/1, /*num_samples=*/4, true).latency_ms;
  desc.layers[0].weights_binarizable = true;
  const double binary_ms =
      core::estimate_mc(desc, config, 1, 4, true).latency_ms;
  EXPECT_LT(binary_ms, plain_ms);

  // serve::CostModel wraps the same model, so the serving oracle sees the
  // tier discount too.
  desc.layers[0].weights_binarizable = false;
  serve::CostModel plain_model(desc, config, true);
  desc.layers[0].weights_binarizable = true;
  serve::CostModel binary_model(desc, config, true);
  EXPECT_LT(binary_model.modelled_ms(1, 4), plain_model.modelled_ms(1, 4));
}

// --- sampler reseed (the lane arena's reuse contract) -----------------------

TEST(SamplerReseed, MatchesFreshlyConstructedSampler) {
  core::BernoulliSamplerConfig config;
  config.p = 0.25;
  config.pf = 16;
  config.fifo_depth = 4;
  config.seed = 5;
  core::BernoulliSampler reused(config);
  for (int i = 0; i < 100; ++i) (void)reused.next_drop();
  for (int i = 0; i < 40; ++i) reused.step_cycle();

  reused.reseed(99);
  config.seed = 99;
  core::BernoulliSampler fresh(config);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(reused.next_drop(), fresh.next_drop()) << "drop bit " << i;

  // Cycle-level state was cleared too: both produce the same mask words.
  reused.reseed(7);
  config.seed = 7;
  core::BernoulliSampler fresh7(config);
  for (int i = 0; i < 64; ++i) {
    reused.step_cycle();
    fresh7.step_cycle();
  }
  EXPECT_EQ(reused.fifo_occupancy(), fresh7.fifo_occupancy());
  std::vector<std::uint8_t> word_a, word_b;
  while (reused.pop_word(word_a)) {
    ASSERT_TRUE(fresh7.pop_word(word_b));
    EXPECT_EQ(word_a, word_b);
  }
  EXPECT_FALSE(fresh7.pop_word(word_b));
}

}  // namespace
}  // namespace bnn
