#include "nn/models.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bnn::nn {
namespace {

TEST(Models, LeNet5Shapes) {
  util::Rng rng(1);
  Model model = make_lenet5(rng);
  EXPECT_EQ(model.input_shape(), (std::vector<int>{1, 28, 28}));
  EXPECT_EQ(model.num_sites(), 4);
  Tensor x = Tensor::randn({2, 1, 28, 28}, rng);
  Tensor y = model.net().forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 10}));
}

TEST(Models, Vgg11Shapes) {
  util::Rng rng(2);
  Model model = make_vgg11(rng, 10, /*width_divisor=*/8);
  EXPECT_EQ(model.num_sites(), 9);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  Tensor y = model.net().forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 10}));
}

TEST(Models, ResNet18Shapes) {
  util::Rng rng(3);
  Model model = make_resnet18(rng, 10, /*base_width=*/8);
  EXPECT_EQ(model.num_sites(), 9);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  Tensor y = model.net().forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 10}));
}

TEST(Models, TinyCnnShapes) {
  util::Rng rng(4);
  Model model = make_tiny_cnn(rng, 10, 1, 12);
  Tensor x = Tensor::randn({3, 1, 12, 12}, rng);
  EXPECT_EQ(model.net().forward(x).shape(), (std::vector<int>{3, 10}));
  EXPECT_EQ(model.num_sites(), 3);
}

TEST(Models, SetBayesianLastActivatesSuffix) {
  util::Rng rng(5);
  Model model = make_lenet5(rng);
  model.set_bayesian_last(2);
  EXPECT_FALSE(model.site(0).active());
  EXPECT_FALSE(model.site(1).active());
  EXPECT_TRUE(model.site(2).active());
  EXPECT_TRUE(model.site(3).active());
  EXPECT_EQ(model.bayesian_layers(), 2);
  EXPECT_EQ(model.first_active_site(), model.site_nodes()[2]);

  model.set_bayesian_last(0);
  EXPECT_EQ(model.first_active_site(), -1);
  for (int i = 0; i < model.num_sites(); ++i) EXPECT_FALSE(model.site(i).active());

  EXPECT_THROW(model.set_bayesian_last(5), std::invalid_argument);
  EXPECT_THROW(model.set_bayesian_last(-1), std::invalid_argument);
}

TEST(Models, DeterministicNetworkIsRepeatable) {
  util::Rng rng(6);
  Model model = make_lenet5(rng);
  model.set_bayesian_last(0);
  Tensor x = Tensor::randn({1, 1, 28, 28}, rng);
  Tensor y1 = model.net().forward(x);
  Tensor y2 = model.net().forward(x);
  EXPECT_EQ(y1.max_abs_diff(y2), 0.0f);
}

TEST(Models, ActiveSitesMakeOutputStochastic) {
  util::Rng rng(7);
  Model model = make_lenet5(rng);
  model.set_bayesian_last(model.num_sites());
  Tensor x = Tensor::randn({1, 1, 28, 28}, rng);
  Tensor y1 = model.net().forward(x);
  Tensor y2 = model.net().forward(x);
  EXPECT_GT(y1.max_abs_diff(y2), 0.0f);
}

TEST(Models, SetDropoutPPropagates) {
  util::Rng rng(8);
  Model model = make_vgg11(rng, 10, 8);
  model.set_dropout_p(0.125);
  for (int i = 0; i < model.num_sites(); ++i) EXPECT_DOUBLE_EQ(model.site(i).p(), 0.125);
}

TEST(Describe, LeNetHardwareLayers) {
  util::Rng rng(9);
  Model model = make_lenet5(rng);
  NetworkDesc desc = model.describe();
  // conv1, conv2, fc1, fc2, fc3
  ASSERT_EQ(desc.num_layers(), 5);
  EXPECT_EQ(desc.num_sites(), 4);
  EXPECT_EQ(desc.layers[0].op, HwLayer::Op::conv);
  EXPECT_TRUE(desc.layers[0].has_bn);
  EXPECT_TRUE(desc.layers[0].has_relu);
  EXPECT_EQ(desc.layers[0].pool_kernel, 2);
  EXPECT_TRUE(desc.layers[0].is_bayes_site);
  EXPECT_EQ(desc.layers[0].out_h, 14);  // post-pool stored map
  EXPECT_EQ(desc.layers[0].conv_out_h, 28);
  EXPECT_EQ(desc.layers[4].op, HwLayer::Op::linear);
  EXPECT_FALSE(desc.layers[4].is_bayes_site);
  EXPECT_EQ(desc.layers[2].in_c, 400);
  EXPECT_EQ(desc.layers[2].out_c, 120);
}

TEST(Describe, MacsMatchFloatNetwork) {
  util::Rng rng(10);
  Model model = make_lenet5(rng);
  NetworkDesc desc = model.describe();
  const std::vector<int> batched{1, 1, 28, 28};
  EXPECT_EQ(desc.total_macs(), model.net().total_macs(batched));
}

TEST(Describe, CutLayerForBayesPortions) {
  util::Rng rng(11);
  Model model = make_lenet5(rng);
  NetworkDesc desc = model.describe();
  // Sites live on layers 0,1,2,3 (fc3 has none).
  EXPECT_EQ(desc.cut_layer_for(4), 0);
  EXPECT_EQ(desc.cut_layer_for(1), 3);
  EXPECT_EQ(desc.cut_layer_for(0), desc.num_layers() - 1);
  EXPECT_THROW(desc.cut_layer_for(5), std::invalid_argument);
}

TEST(Describe, ResNetShortcutsDetected) {
  util::Rng rng(12);
  Model model = make_resnet18(rng, 10, 8);
  NetworkDesc desc = model.describe();
  int shortcut_layers = 0;
  for (const HwLayer& layer : desc.layers) shortcut_layers += layer.has_shortcut ? 1 : 0;
  EXPECT_EQ(shortcut_layers, 8);  // one Add per basic block
  EXPECT_EQ(desc.num_sites(), 9);
}

TEST(Describe, ResNet101AnalyticDescription) {
  NetworkDesc desc = describe_resnet101();
  // 1 stem + 33 blocks * 3 convs + 4 projections + 1 fc = 105 layers.
  EXPECT_EQ(desc.num_layers(), 105);
  EXPECT_EQ(desc.num_sites(), 105);  // paper runs it with MCD on every layer
  // Published MAC count for ResNet-101 at 224x224 is ~7.8 GMac.
  const double gmacs = static_cast<double>(desc.total_macs()) / 1e9;
  EXPECT_GT(gmacs, 7.0);
  EXPECT_LT(gmacs, 8.6);
  // ~44.5 M parameters.
  const double mparams = static_cast<double>(desc.total_weight_count()) / 1e6;
  EXPECT_GT(mparams, 40.0);
  EXPECT_LT(mparams, 48.0);
}

TEST(Describe, Mlp3Description) {
  NetworkDesc desc = describe_mlp3(784, 256, 10);
  ASSERT_EQ(desc.num_layers(), 3);
  EXPECT_EQ(desc.total_macs(), 784 * 256 + 256 * 256 + 256 * 10);
  EXPECT_EQ(desc.num_sites(), 3);
}

TEST(Describe, BufferSizingHelpers) {
  util::Rng rng(13);
  Model model = make_lenet5(rng);
  NetworkDesc desc = model.describe();
  EXPECT_EQ(desc.max_input_elems(), 6 * 14 * 14 > 28 * 28 ? 6 * 14 * 14 : 28 * 28);
  // Largest filter slice: fc1 sees 400 inputs (Ci*Ki*Ki = 400).
  EXPECT_EQ(desc.max_filter_weight_elems(), 400);
  EXPECT_EQ(desc.max_out_channels(), 120);
}

}  // namespace
}  // namespace bnn::nn
