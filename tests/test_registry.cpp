// Multi-tenant model registry (serve/model_registry.h) and the registry-
// backed serve::Server:
//   - publish/resolve versioning, hot-swap stats, and residency eviction at
//     the registry level,
//   - a 3-tenant mixed workload (one tenant residency-forced cold, plus a
//     mid-run hot-swap of an uninvolved tenant) is bit-identical to each
//     tenant's own single-model baseline across R x threads x dispatch,
//   - a hot-swap under concurrent load drains in-flight requests on the OLD
//     weights bit-identically while every later submit sees the new version
//     exactly once,
//   - eviction/reload thrash never changes a bit and is counted,
//   - per-tenant queue quotas reject with QuotaExceededError and count in
//     ServerStats::quota_rejected,
//   - a cold tenant's DDR-reload-inflated cost reorders cost-aware dispatch
//     ahead of a cheaper hot group.
#include "serve/model_registry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/accelerator.h"
#include "data/synth.h"
#include "nn/models.h"
#include "serve/cost_model.h"
#include "serve/server.h"
#include "train/trainer.h"

namespace bnn {
namespace {

quant::QuantNetwork train_variant(std::uint64_t model_seed, std::uint64_t data_seed) {
  util::Rng rng(model_seed);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
  util::Rng data_rng(data_seed);
  data::Dataset dataset = data::make_synth_digits_small(64, data_rng);
  train::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 16;
  train::fit(model, dataset, config);
  return quant::quantize_model(model, dataset);
}

data::Dataset make_stimulus() {
  util::Rng data_rng(52);
  return data::make_synth_digits_small(64, data_rng);
}

// Three weight sets on the SAME 12x12 CNN topology: distinct tenants (or
// distinct versions of one tenant for the hot-swap tests).
struct RegistryFixture {
  RegistryFixture()
      : net_a(train_variant(51, 52)),
        net_b(train_variant(61, 62)),
        net_c(train_variant(81, 82)),
        dataset(make_stimulus()) {}

  quant::QuantNetwork net_a, net_b, net_c;
  data::Dataset dataset;  // stimulus images
};

RegistryFixture& fixture() {
  static RegistryFixture instance;
  return instance;
}

core::AcceleratorConfig accel_config(int num_threads) {
  core::AcceleratorConfig config;
  config.nne.pc = 16;
  config.nne.pf = 8;
  config.nne.pv = 4;
  config.sampler_seed = 4321;
  config.num_threads = num_threads;
  return config;
}

serve::Request make_request(int image_index, std::uint64_t stream_id,
                            int num_samples = 3, const std::string& model = "") {
  auto& fx = fixture();
  serve::Request request;
  request.image = fx.dataset.images().batch_row(image_index % fx.dataset.size());
  request.options.num_samples = num_samples;
  request.model = model;
  request.stream_id = stream_id;
  return request;
}

// Single-model reference responses at R=1/max_batch=1 — the gold each
// tenant of a multi-tenant server must reproduce bit-exactly.
std::vector<serve::Response> single_model_baseline(
    const quant::QuantNetwork& net, const std::vector<serve::Request>& requests) {
  serve::ServerConfig config;
  config.max_batch = 1;
  serve::Server server(core::Accelerator(net, accel_config(1)), config);
  std::vector<serve::Response> responses;
  for (const serve::Request& request : requests) {
    serve::Request copy = request;
    copy.model.clear();  // baseline server knows only its default tenant
    responses.push_back(server.infer(std::move(copy)));
  }
  return responses;
}

// Packed weight footprints of the fixture nets, via a throwaway registry.
std::uint64_t published_bytes(const quant::QuantNetwork& net) {
  serve::ModelRegistry probe;
  return probe.publish("probe", net)->weight_bytes;
}

// --- registry unit behaviour -------------------------------------------------

TEST(ModelRegistry, PublishResolveVersioningAndSwapStats) {
  auto& fx = fixture();
  serve::ModelRegistry registry;
  EXPECT_FALSE(registry.has("a"));
  EXPECT_THROW(registry.resolve("a"), std::invalid_argument);

  const auto v1 = registry.publish("a", fx.net_a);
  EXPECT_EQ(v1->name, "a");
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->key, 0u);
  EXPECT_NE(v1->fingerprint, 0u);
  EXPECT_GT(v1->weight_bytes, 0u);
  EXPECT_TRUE(registry.has("a"));
  EXPECT_TRUE(registry.hot("a"));

  const auto bound = registry.resolve("a");
  EXPECT_EQ(bound.version.get(), v1.get());
  EXPECT_NE(bound.plan, nullptr);
  EXPECT_FALSE(bound.cold_start);

  // Hot-swap: same key, version + 1, different fingerprint, one swap
  // counted; the old snapshot stays alive through our shared_ptr.
  const auto v2 = registry.publish("a", fx.net_b);
  EXPECT_EQ(v2->key, v1->key);
  EXPECT_EQ(v2->version, 2u);
  EXPECT_NE(v2->fingerprint, v1->fingerprint);
  EXPECT_EQ(registry.resolve("a").version->version, 2u);
  EXPECT_EQ(v1->version, 1u);

  const auto other = registry.publish("b", fx.net_c);
  EXPECT_EQ(other->key, 1u);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"a", "b"}));

  const serve::RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.models, 2u);
  EXPECT_EQ(stats.hot_models, 2u);
  EXPECT_EQ(stats.swaps, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ModelRegistry, ResidencyBudgetEvictsLruAndReloadsCold) {
  auto& fx = fixture();
  const std::uint64_t bytes_a = published_bytes(fx.net_a);
  const std::uint64_t bytes_b = published_bytes(fx.net_b);

  // Budget fits only the larger tenant: publishing the second evicts the
  // first, and every resolve of a cold tenant reloads it (evicting the
  // other right back — deliberate thrash).
  serve::RegistryConfig config;
  config.residency_budget_bytes = std::max(bytes_a, bytes_b);
  serve::ModelRegistry registry(config);
  registry.publish("a", fx.net_a);
  registry.publish("b", fx.net_b);
  EXPECT_FALSE(registry.hot("a"));
  EXPECT_TRUE(registry.hot("b"));

  const auto cold = registry.resolve("a");
  EXPECT_TRUE(cold.cold_start);
  EXPECT_NE(cold.plan, nullptr);
  EXPECT_TRUE(registry.hot("a"));
  EXPECT_FALSE(registry.hot("b"));

  const auto warm = registry.resolve("a");
  EXPECT_FALSE(warm.cold_start);

  const serve::RegistryStats stats = registry.stats();
  EXPECT_GE(stats.evictions, 2u);
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.hot_models, 1u);
  EXPECT_LE(stats.resident_bytes, config.residency_budget_bytes);
}

// --- the multi-tenant acceptance matrix --------------------------------------

TEST(RegistryServer, MixedTenantsMatchSingleModelBaselinesAcrossTheMatrix) {
  auto& fx = fixture();
  const int num_requests = 18;
  const std::vector<const quant::QuantNetwork*> nets = {&fx.net_a, &fx.net_b,
                                                        &fx.net_c};
  const std::vector<std::string> names = {"a", "b", "c"};

  // Round-robin mixed workload, stream id pinned to the request index.
  std::vector<serve::Request> requests;
  for (int r = 0; r < num_requests; ++r)
    requests.push_back(make_request(r, static_cast<std::uint64_t>(r), 3,
                                    names[static_cast<std::size_t>(r % 3)]));

  // Per-tenant single-model baselines.
  std::vector<std::vector<serve::Response>> baselines;
  for (int m = 0; m < 3; ++m) {
    std::vector<serve::Request> mine;
    for (int r = m; r < num_requests; r += 3)
      mine.push_back(requests[static_cast<std::size_t>(r)]);
    baselines.push_back(
        single_model_baseline(*nets[static_cast<std::size_t>(m)], mine));
  }

  const std::uint64_t total_bytes = published_bytes(fx.net_a) +
                                    published_bytes(fx.net_b) +
                                    published_bytes(fx.net_c);
  for (const int replicas : {1, 2, 4}) {
    for (const int threads : {1, 2, 8}) {
      for (const serve::DispatchMode mode :
           {serve::DispatchMode::fifo, serve::DispatchMode::cost_aware}) {
        // One byte short of "all three hot": the LRU tenant is forced
        // cold, so the cell also crosses eviction/reload states. A spare
        // tenant exists solely to be hot-swapped mid-run.
        serve::RegistryConfig registry_config;
        registry_config.residency_budget_bytes = total_bytes - 1;
        auto registry = std::make_shared<serve::ModelRegistry>(registry_config);
        for (int m = 0; m < 3; ++m)
          registry->publish(names[static_cast<std::size_t>(m)],
                            *nets[static_cast<std::size_t>(m)]);
        registry->publish("spare", fx.net_c);

        serve::ServerConfig server_config;
        server_config.max_batch = 4;
        server_config.num_replicas = replicas;
        server_config.num_threads = threads;
        server_config.dispatch_mode = mode;
        server_config.default_model = names[0];
        serve::Server server(registry, accel_config(threads), server_config);

        std::vector<std::future<serve::Response>> futures;
        for (int r = 0; r < num_requests; ++r) {
          if (r == num_requests / 2)
            registry->publish("spare", fx.net_a);  // uninvolved mid-run swap
          futures.push_back(server.submit(requests[static_cast<std::size_t>(r)]));
        }
        for (int r = 0; r < num_requests; ++r) {
          const serve::Response response =
              futures[static_cast<std::size_t>(r)].get();
          const serve::Response& reference =
              baselines[static_cast<std::size_t>(r % 3)]
                       [static_cast<std::size_t>(r / 3)];
          EXPECT_EQ(response.probs.max_abs_diff(reference.probs), 0.0f)
              << "request " << r << " R=" << replicas << " threads=" << threads
              << " dispatch=" << static_cast<int>(mode);
          EXPECT_EQ(response.model_key, static_cast<serve::ModelKey>(r % 3));
          EXPECT_EQ(response.model_version, 1u);
        }
        EXPECT_GE(registry->stats().evictions, 1u);
        EXPECT_EQ(registry->stats().swaps, 1u);
      }
    }
  }
}

// --- hot-swap under concurrent load ------------------------------------------

TEST(RegistryServer, HotSwapDrainsInFlightOnOldWeightsAndRoutesNewExactlyOnce) {
  auto& fx = fixture();
  const int half = 4;
  std::vector<serve::Request> requests;
  for (int r = 0; r < 2 * half; ++r)
    requests.push_back(make_request(r, static_cast<std::uint64_t>(r), 8, "m"));

  const std::vector<serve::Response> baseline_v1 =
      single_model_baseline(fx.net_a, requests);
  const std::vector<serve::Response> baseline_v2 =
      single_model_baseline(fx.net_b, requests);

  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->publish("m", fx.net_a);
  serve::ServerConfig config;
  config.max_batch = 1;
  config.default_model = "m";
  serve::Server server(registry, accel_config(1), config);

  // Queue the first half, swap while they are in flight, queue the rest.
  std::vector<std::future<serve::Response>> futures;
  for (int r = 0; r < half; ++r)
    futures.push_back(server.submit(requests[static_cast<std::size_t>(r)]));
  registry->publish("m", fx.net_b);
  for (int r = half; r < 2 * half; ++r)
    futures.push_back(server.submit(requests[static_cast<std::size_t>(r)]));

  for (int r = 0; r < 2 * half; ++r) {
    const serve::Response response = futures[static_cast<std::size_t>(r)].get();
    const bool pre_swap = r < half;
    EXPECT_EQ(response.model_version, pre_swap ? 1u : 2u) << "request " << r;
    const serve::Response& reference =
        pre_swap ? baseline_v1[static_cast<std::size_t>(r)]
                 : baseline_v2[static_cast<std::size_t>(r)];
    EXPECT_EQ(response.probs.max_abs_diff(reference.probs), 0.0f)
        << "request " << r << (pre_swap ? " (old weights)" : " (new weights)");
  }
  EXPECT_EQ(registry->stats().swaps, 1u);
}

// --- eviction/reload bit-identity --------------------------------------------

TEST(RegistryServer, EvictionThrashStaysBitIdenticalAndCountsReloads) {
  auto& fx = fixture();
  const int num_requests = 12;
  std::vector<serve::Request> requests;
  for (int r = 0; r < num_requests; ++r)
    requests.push_back(make_request(r, static_cast<std::uint64_t>(r), 3,
                                    r % 2 == 0 ? "a" : "b"));

  std::vector<serve::Request> requests_a, requests_b;
  for (int r = 0; r < num_requests; ++r)
    (r % 2 == 0 ? requests_a : requests_b)
        .push_back(requests[static_cast<std::size_t>(r)]);
  const auto baseline_a = single_model_baseline(fx.net_a, requests_a);
  const auto baseline_b = single_model_baseline(fx.net_b, requests_b);

  // Budget fits one tenant: alternating a/b traffic reloads on every flip.
  serve::RegistryConfig registry_config;
  registry_config.residency_budget_bytes =
      std::max(published_bytes(fx.net_a), published_bytes(fx.net_b));
  auto registry = std::make_shared<serve::ModelRegistry>(registry_config);
  registry->publish("a", fx.net_a);
  registry->publish("b", fx.net_b);

  serve::ServerConfig config;
  config.max_batch = 1;
  config.default_model = "a";
  serve::Server server(registry, accel_config(1), config);

  bool saw_cold_response = false;
  for (int r = 0; r < num_requests; ++r) {
    const serve::Response response =
        server.infer(requests[static_cast<std::size_t>(r)]);
    saw_cold_response = saw_cold_response || response.cold_start;
    const serve::Response& reference =
        r % 2 == 0 ? baseline_a[static_cast<std::size_t>(r / 2)]
                   : baseline_b[static_cast<std::size_t>(r / 2)];
    EXPECT_EQ(response.probs.max_abs_diff(reference.probs), 0.0f)
        << "request " << r << " (tenant " << (r % 2 == 0 ? "a" : "b") << ")";
  }
  EXPECT_TRUE(saw_cold_response);
  EXPECT_GT(server.stats().cold_starts, 0u);
  const serve::RegistryStats stats = registry->stats();
  EXPECT_GT(stats.reloads, 0u);
  EXPECT_GT(stats.evictions, 0u);
}

// --- per-tenant quotas -------------------------------------------------------

TEST(RegistryServer, TenantQuotaRejectsBeyondMaxQueued) {
  auto& fx = fixture();
  auto registry = std::make_shared<serve::ModelRegistry>();
  serve::ModelConfig model_config;
  model_config.max_queued = 1;
  registry->publish("a", fx.net_a, model_config);

  serve::ServerConfig config;
  config.max_batch = 1;
  config.default_model = "a";
  serve::Server server(registry, accel_config(1), config);

  // One heavy request occupies the single replica; the light flood behind
  // it can hold at most max_queued=1 slot, so the rest must be rejected
  // with QuotaExceededError (never blocked, whatever the overload policy).
  std::vector<std::future<serve::Response>> futures;
  futures.push_back(server.submit(make_request(0, 0, 192)));
  for (int r = 1; r <= 6; ++r)
    futures.push_back(server.submit(make_request(r, static_cast<std::uint64_t>(r))));

  std::uint64_t served = 0, quota_rejected = 0;
  for (auto& future : futures) {
    try {
      (void)future.get();
      ++served;
    } catch (const serve::QuotaExceededError&) {
      ++quota_rejected;
    }
  }
  EXPECT_GE(quota_rejected, 1u);
  EXPECT_EQ(served + quota_rejected, 7u);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.quota_rejected, quota_rejected);
  EXPECT_EQ(stats.rejected, quota_rejected);
  bool found_row = false;
  for (const serve::ModelServeStats& row : server.model_stats()) {
    if (row.name != "a") continue;
    found_row = true;
    EXPECT_EQ(row.quota_rejected, quota_rejected);
    EXPECT_EQ(row.served, served);
  }
  EXPECT_TRUE(found_row);
}

// --- cold-cost-aware dispatch ------------------------------------------------

TEST(RegistryServer, ColdReloadCostInflatesCostAwareDispatchOrdering) {
  auto& fx = fixture();
  // A crawling DDR makes the modelled reload of a few-KB tenant seconds
  // long — a decisive margin between otherwise equal-cost groups. (It also
  // slows every modelled compute pass; the reload is a tiebreaker, not a
  // dominator.)
  core::AcceleratorConfig config = accel_config(1);
  config.ddr.effective_gbytes_per_s = 1e-6;

  const std::uint64_t bytes_hot = published_bytes(fx.net_a);
  const std::uint64_t bytes_cold = published_bytes(fx.net_b);

  // The quantitative premise first: the two tenants share one topology, so
  // an equal-S pass has EXACTLY equal modelled cost; only the cold reload
  // separates the groups.
  serve::CostModel cost(core::PerfConfig{config.nne, config.ddr},
                        config.use_intermediate_caching);
  serve::ModelRegistry sizing;
  cost.bind_model(0, sizing.publish("hot", fx.net_a)->network->describe(), bytes_hot);
  cost.bind_model(1, sizing.publish("cold", fx.net_b)->network->describe(),
                  bytes_cold);
  EXPECT_GT(cost.cold_reload_ms(1), 0.0);
  serve::RequestOptions contender;
  contender.num_samples = 64;
  EXPECT_DOUBLE_EQ(cost.first_pass_ms(0, contender),
                   cost.first_pass_ms(1, contender));

  // The serving-order consequence: with the replica pinned by a blocker,
  // a later-submitted equal-S request on the COLD tenant must jump the
  // earlier hot-tenant request under cost-aware LPT, because its group
  // cost carries the DDR reload.
  serve::RegistryConfig registry_config;
  registry_config.residency_budget_bytes = std::max(bytes_hot, bytes_cold);
  auto registry = std::make_shared<serve::ModelRegistry>(registry_config);
  registry->publish("hot", fx.net_a);
  registry->publish("cold", fx.net_b);  // evicts "hot"... so warm it back:
  (void)registry->resolve("hot");       // now "cold" is the evicted one
  ASSERT_TRUE(registry->hot("hot"));
  ASSERT_FALSE(registry->hot("cold"));

  serve::ServerConfig server_config;
  server_config.max_batch = 1;
  server_config.dispatch_mode = serve::DispatchMode::cost_aware;
  server_config.default_model = "hot";
  serve::Server server(registry, config, server_config);

  auto blocker = server.submit(make_request(0, 0, 128, "hot"));
  auto hot_contender = server.submit(make_request(1, 1, 64, "hot"));
  auto cold_contender = server.submit(make_request(2, 2, 64, "cold"));

  const serve::Response cold_response = cold_contender.get();
  EXPECT_TRUE(cold_response.cold_start);
  // The hot contender (submitted earlier, equal S) must still be queued or
  // in service when the reload-inflated cold group has already completed.
  EXPECT_NE(hot_contender.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  (void)blocker.get();
  (void)hot_contender.get();
}

}  // namespace
}  // namespace bnn
