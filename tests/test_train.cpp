#include <gtest/gtest.h>

#include <cmath>

#include "data/synth.h"
#include "nn/linear.h"
#include "nn/models.h"
#include "train/loss.h"
#include "train/sgd.h"
#include "train/trainer.h"

namespace bnn::train {
namespace {

TEST(Loss, UniformLogitsGiveLogK) {
  nn::Tensor logits({3, 10});
  const LossResult result = softmax_cross_entropy(logits, {0, 5, 9});
  EXPECT_NEAR(result.loss, std::log(10.0), 1e-6);
}

TEST(Loss, ConfidentCorrectIsSmall) {
  nn::Tensor logits = nn::Tensor::from_values({1, 3}, {10.0f, 0.0f, 0.0f});
  EXPECT_LT(softmax_cross_entropy(logits, {0}).loss, 1e-3);
  EXPECT_GT(softmax_cross_entropy(logits, {1}).loss, 5.0);
}

TEST(Loss, GradientRowsSumToZero) {
  util::Rng rng(1);
  nn::Tensor logits = nn::Tensor::randn({4, 6}, rng);
  const LossResult result = softmax_cross_entropy(logits, {0, 1, 2, 3});
  for (int n = 0; n < 4; ++n) {
    float row_sum = 0.0f;
    for (int k = 0; k < 6; ++k) row_sum += result.grad.v2(n, k);
    EXPECT_NEAR(row_sum, 0.0f, 1e-6f);
  }
}

TEST(Loss, RejectsBadLabels) {
  nn::Tensor logits({2, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 3}), std::invalid_argument);
}

TEST(Sgd, PlainStepDescendsGradient) {
  nn::Param p;
  p.value = nn::Tensor::from_values({2}, {1.0f, -2.0f});
  p.zero_grad();
  p.grad[0] = 0.5f;
  p.grad[1] = -1.0f;
  Sgd opt(0.1, /*momentum=*/0.0, /*weight_decay=*/0.0);
  opt.step({&p});
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 0.5f, 1e-6f);
  EXPECT_NEAR(p.value[1], -2.0f + 0.1f * 1.0f, 1e-6f);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  nn::Param p;
  p.value = nn::Tensor::from_values({1}, {0.0f});
  Sgd opt(1.0, /*momentum=*/0.5, /*weight_decay=*/0.0);
  p.zero_grad();
  p.grad[0] = 1.0f;
  opt.step({&p});  // v=1, x=-1
  EXPECT_NEAR(p.value[0], -1.0f, 1e-6f);
  opt.step({&p});  // v=0.5*1+1=1.5, x=-2.5
  EXPECT_NEAR(p.value[0], -2.5f, 1e-6f);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  nn::Param p;
  p.value = nn::Tensor::from_values({1}, {10.0f});
  p.zero_grad();  // zero gradient: only decay acts
  Sgd opt(0.1, 0.0, /*weight_decay=*/0.5);
  opt.step({&p});
  EXPECT_NEAR(p.value[0], 10.0f - 0.1f * 0.5f * 10.0f, 1e-5f);
}

TEST(Sgd, SkipsParamsWithoutGradients)
{
  nn::Param p;
  p.value = nn::Tensor::from_values({1}, {3.0f});
  Sgd opt(0.1);
  opt.step({&p});  // grad never allocated
  EXPECT_EQ(p.value[0], 3.0f);
}

TEST(Trainer, LossDecreasesOnTinyProblem) {
  util::Rng rng(33);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
  model.set_bayesian_last(0);

  util::Rng data_rng(44);
  data::Dataset digits = data::make_synth_digits(240, data_rng);
  // Shrink to 12x12 via simple 2x2-mean + crop-free resample to keep the
  // test fast: easiest is training on full images with a LeNet would be
  // slow, so instead train the tiny CNN on a 12x12 center crop.
  nn::Tensor small({digits.size(), 1, 12, 12});
  for (int n = 0; n < digits.size(); ++n)
    for (int y = 0; y < 12; ++y)
      for (int x = 0; x < 12; ++x)
        small.v4(n, 0, y, x) = digits.images().v4(n, 0, 2 + 2 * y, 2 + 2 * x);
  data::Dataset ds(std::move(small), digits.labels(), 10);

  TrainConfig config;
  config.epochs = 4;
  config.batch_size = 16;
  config.learning_rate = 0.05;
  const auto history = fit(model, ds, config);
  ASSERT_EQ(history.size(), 4u);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
  EXPECT_GT(history.back().train_accuracy, 0.3);  // well above 10% chance
}

TEST(Trainer, EvaluateAccuracyOnTrainedModel) {
  util::Rng rng(55);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
  model.set_bayesian_last(0);
  util::Rng data_rng(66);
  data::Dataset digits = data::make_synth_digits(300, data_rng);
  nn::Tensor small({digits.size(), 1, 12, 12});
  for (int n = 0; n < digits.size(); ++n)
    for (int y = 0; y < 12; ++y)
      for (int x = 0; x < 12; ++x)
        small.v4(n, 0, y, x) = digits.images().v4(n, 0, 2 + 2 * y, 2 + 2 * x);
  data::Dataset ds(std::move(small), digits.labels(), 10);
  const auto [train_set, test_set] = ds.split(240);

  TrainConfig config;
  config.epochs = 5;
  config.batch_size = 16;
  fit(model, train_set, config);
  const double accuracy = evaluate_accuracy(model, test_set);
  EXPECT_GT(accuracy, 0.3);
  EXPECT_LE(accuracy, 1.0);
}

TEST(Trainer, TrainingWithActiveDropoutStillLearns) {
  util::Rng rng(77);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
  model.set_bayesian_last(model.num_sites());  // full BNN training
  util::Rng data_rng(88);
  data::Dataset digits = data::make_synth_digits(240, data_rng);
  nn::Tensor small({digits.size(), 1, 12, 12});
  for (int n = 0; n < digits.size(); ++n)
    for (int y = 0; y < 12; ++y)
      for (int x = 0; x < 12; ++x)
        small.v4(n, 0, y, x) = digits.images().v4(n, 0, 2 + 2 * y, 2 + 2 * x);
  data::Dataset ds(std::move(small), digits.labels(), 10);

  TrainConfig config;
  config.epochs = 4;
  config.batch_size = 16;
  const auto history = fit(model, ds, config);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
}

}  // namespace
}  // namespace bnn::train
