// Cost-modelled dispatch and adaptive overload shedding:
//   - serve::CostModel wraps core::estimate_mc per {L, S} (cached, monotone
//     in S, first-pass/admission/downgrade relations for routed requests),
//   - core::calibrate_perf guards its inputs and scales modelled -> wall ms,
//   - adaptive_admission is the documented pure decision function,
//   - a Server under OverloadPolicy::adaptive downgrades routed requests to
//     a screening-only response that is BIT-IDENTICAL to a direct
//     never-escalating request at the same stream id, rejects non-routed
//     requests with QueueFullError while overloaded, keeps the
//     submitted == served + rejected counter identity, and logs admission
//     decisions that a single-threaded replay of the recorded inputs
//     reproduces exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <limits>
#include <memory>
#include <vector>

#include "core/accelerator.h"
#include "core/software_metrics.h"
#include "data/synth.h"
#include "nn/models.h"
#include "serve/cost_model.h"
#include "serve/server.h"
#include "train/trainer.h"

namespace bnn {
namespace {

// Tiny quantized CNN on 12x12 synthetic digits (mirrors the serve-test
// fixture; trained once per process).
struct CostFixture {
  CostFixture() {
    util::Rng rng(71);
    nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
    util::Rng data_rng(72);
    dataset = std::make_unique<data::Dataset>(data::make_synth_digits_small(96, data_rng));

    model.set_bayesian_last(0);
    train::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 16;
    train::fit(model, *dataset, config);
    qnet = std::make_unique<quant::QuantNetwork>(quant::quantize_model(model, *dataset));
  }

  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<quant::QuantNetwork> qnet;
};

CostFixture& fixture() {
  static CostFixture instance;
  return instance;
}

core::AcceleratorConfig accel_config(int num_threads) {
  core::AcceleratorConfig config;
  config.nne.pc = 16;
  config.nne.pf = 8;
  config.nne.pv = 4;
  config.sampler_seed = 4321;
  config.num_threads = num_threads;
  return config;
}

serve::Request request_for(const data::Batch& batch, int n, serve::RequestOptions options,
                           std::uint64_t stream_id) {
  serve::Request request;
  request.image = batch.images.batch_row(n);
  request.options = options;
  request.stream_id = stream_id;
  return request;
}

// --- CostModel --------------------------------------------------------------

TEST(CostModel, MatchesEstimateMcAndIsMonotoneInSamples) {
  auto& fx = fixture();
  core::Accelerator accelerator(*fx.qnet, accel_config(1));
  const auto model = serve::CostModel::for_accelerator(accelerator);

  EXPECT_EQ(model->num_sites(), fx.qnet->num_sites);
  // The model is the accelerator's own estimate, cached.
  for (const int samples : {1, 4, 10}) {
    EXPECT_DOUBLE_EQ(model->modelled_ms(2, samples),
                     accelerator.estimate(2, samples).latency_ms);
  }
  // More samples never model as cheaper; more Bayesian depth at fixed S
  // never models as cheaper either (longer stochastic suffix).
  EXPECT_LT(model->modelled_ms(2, 2), model->modelled_ms(2, 10));
  EXPECT_LE(model->modelled_ms(1, 10), model->modelled_ms(fx.qnet->num_sites, 10));
  // L = -1 resolves to every site.
  EXPECT_DOUBLE_EQ(model->modelled_ms(-1, 5),
                   model->modelled_ms(fx.qnet->num_sites, 5));
}

TEST(CostModel, RequestCostsReflectRoutingAndDowngrade) {
  auto& fx = fixture();
  core::Accelerator accelerator(*fx.qnet, accel_config(1));
  const auto model = serve::CostModel::for_accelerator(accelerator);

  serve::RequestOptions direct;
  direct.num_samples = 10;
  direct.bayes_layers = 2;
  // A direct request is one full pass, worst case included.
  EXPECT_DOUBLE_EQ(model->first_pass_ms(direct), model->modelled_ms(2, 10));
  EXPECT_DOUBLE_EQ(model->admission_ms(direct), model->modelled_ms(2, 10));
  EXPECT_DOUBLE_EQ(model->downgraded_ms(direct), model->modelled_ms(2, 10));

  serve::RequestOptions routed = direct;
  routed.use_uncertainty_router = true;
  routed.screening_samples = 2;
  // Routed: first pass is the cheap screening pass; admission assumes the
  // escalation pass on top; a downgrade strips it back to screening only.
  EXPECT_DOUBLE_EQ(model->first_pass_ms(routed), model->modelled_ms(2, 2));
  EXPECT_DOUBLE_EQ(model->admission_ms(routed),
                   model->modelled_ms(2, 2) + model->modelled_ms(2, 10));
  EXPECT_DOUBLE_EQ(model->downgraded_ms(routed), model->modelled_ms(2, 2));
  EXPECT_LT(model->downgraded_ms(routed), model->admission_ms(routed));
}

TEST(CostModel, EscalationReuseTightensRoutedAdmission) {
  auto& fx = fixture();
  core::Accelerator accelerator(*fx.qnet, accel_config(1));
  auto model = serve::CostModel::for_accelerator(accelerator);

  serve::RequestOptions routed;
  routed.num_samples = 10;
  routed.bayes_layers = 2;
  routed.use_uncertainty_router = true;
  routed.screening_samples = 2;
  serve::RequestOptions direct;
  direct.num_samples = 10;
  direct.bayes_layers = 2;

  const double classic = model->admission_ms(routed);
  model->set_escalation_reuse(true);
  // With screening-sample reuse the escalation pass only runs the NEW
  // samples, so worst-case admission is screening + (full - screening).
  EXPECT_DOUBLE_EQ(model->admission_ms(routed),
                   model->modelled_ms(2, 2) + model->modelled_ms(2, 8));
  EXPECT_LT(model->admission_ms(routed), classic);
  // Non-routed requests have no escalation pass to shrink.
  EXPECT_DOUBLE_EQ(model->admission_ms(direct), model->modelled_ms(2, 10));
  model->set_escalation_reuse(false);
  EXPECT_DOUBLE_EQ(model->admission_ms(routed), classic);
}

// --- calibration ------------------------------------------------------------

TEST(PerfCalibration, ScalesModelledLatencyAndGuardsInputs) {
  const core::PerfCalibration calibration = core::calibrate_perf(30.0, 10.0);
  EXPECT_DOUBLE_EQ(calibration.wall_ms_per_modelled_ms, 3.0);
  core::RunStats stats;
  stats.latency_ms = 4.0;
  EXPECT_DOUBLE_EQ(core::calibrated_wall_ms(stats, calibration), 12.0);

  EXPECT_THROW(core::calibrate_perf(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(core::calibrate_perf(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(core::calibrate_perf(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(core::calibrate_perf(std::numeric_limits<double>::quiet_NaN(), 1.0),
               std::invalid_argument);
  EXPECT_THROW(core::calibrate_perf(1.0, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(PerfCalibration, SoftwareMetricsProviderMeasuresEvaluationWallTime) {
  util::Rng rng(17);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
  model.set_bayesian_last(2);
  util::Rng data_rng(18);
  data::Dataset tiny = data::make_synth_digits_small(8, data_rng);
  core::SoftwareMetricsProvider provider(model, tiny, tiny, 1, 1);

  EXPECT_DOUBLE_EQ(provider.last_evaluation_wall_ms(), 0.0);
  (void)provider.evaluate(1, 2);
  const double first = provider.last_evaluation_wall_ms();
  EXPECT_GT(first, 0.0);
  EXPECT_DOUBLE_EQ(provider.total_evaluation_wall_ms(), first);
  // A cache hit is not a measured evaluation.
  (void)provider.evaluate(1, 2);
  EXPECT_DOUBLE_EQ(provider.last_evaluation_wall_ms(), first);
  EXPECT_DOUBLE_EQ(provider.total_evaluation_wall_ms(), first);
  // The measured anchor calibrates the model against this host.
  const core::PerfCalibration calibration = core::calibrate_perf(first, 1.0);
  EXPECT_GT(calibration.wall_ms_per_modelled_ms, 0.0);
}

TEST(Server, AdaptiveCalibratesCostModelAtStartup) {
  auto& fx = fixture();
  serve::ServerConfig config;
  config.overload_policy = serve::OverloadPolicy::adaptive;
  config.latency_target_ms = 50.0;
  config.calibrate_cost_model = true;
  serve::Server server(core::Accelerator(*fx.qnet, accel_config(1)), config);
  ASSERT_NE(server.cost_model(), nullptr);
  // A measured anchor replaced the identity scale with this host's
  // simulator-vs-model ratio (any positive finite value).
  const double scale = server.cost_model()->calibration().wall_ms_per_modelled_ms;
  EXPECT_GT(scale, 0.0);
  EXPECT_TRUE(std::isfinite(scale));
}

// --- the pure admission rule ------------------------------------------------

TEST(AdaptiveAdmission, FollowsTheDocumentedRule) {
  serve::AdmissionInputs inputs;
  inputs.latency_target_ms = 10.0;

  // 1. Hard queue bound dominates everything.
  inputs.queue_full = true;
  inputs.p99_ms = 0.0;
  EXPECT_EQ(serve::adaptive_admission(inputs), serve::AdmissionAction::reject);
  inputs.queue_full = false;

  // 2. Not overloaded (p99 at or under target): admit, whatever the cost.
  inputs.p99_ms = 10.0;
  inputs.request_ms = 1e9;
  EXPECT_EQ(serve::adaptive_admission(inputs), serve::AdmissionAction::admit);
  inputs.p99_ms = 0.0;  // empty window counts as healthy
  EXPECT_EQ(serve::adaptive_admission(inputs), serve::AdmissionAction::admit);

  // 3. Overloaded and routed: downgrade to screening-only.
  inputs.p99_ms = 11.0;
  inputs.downgrade_eligible = true;
  EXPECT_EQ(serve::adaptive_admission(inputs), serve::AdmissionAction::downgrade);

  // 4. Overloaded, not routed, but cheap enough to fit the budget: admit.
  inputs.downgrade_eligible = false;
  inputs.backlog_ms = 4.0;
  inputs.request_ms = 6.0;
  EXPECT_EQ(serve::adaptive_admission(inputs), serve::AdmissionAction::admit);

  // 5. Overloaded and over budget: shed the costly request.
  inputs.request_ms = 6.1;
  EXPECT_EQ(serve::adaptive_admission(inputs), serve::AdmissionAction::reject);
}

TEST(Server, AdaptiveRequiresPositiveLatencyTarget) {
  auto& fx = fixture();
  serve::ServerConfig config;
  config.overload_policy = serve::OverloadPolicy::adaptive;
  config.latency_target_ms = 0.0;
  EXPECT_THROW(serve::Server(core::Accelerator(*fx.qnet, accel_config(1)), config),
               std::invalid_argument);
}

// --- end-to-end adaptive shedding -------------------------------------------

// Drives the server into overload deterministically: a microscopic latency
// target means the window p99 exceeds it from the first served request on,
// so every later admission takes the shedding path.
TEST(Server, AdaptiveDowngradesRoutedAndRejectsCostlyBitIdentically) {
  auto& fx = fixture();
  const data::Batch batch = fx.dataset->batch(0, 4);

  serve::ServerConfig config;
  config.max_batch = 1;
  config.num_threads = 1;
  config.overload_policy = serve::OverloadPolicy::adaptive;
  config.latency_target_ms = 1e-9;  // always "overloaded" once warm
  config.calibrate_cost_model = false;
  config.admission_log_capacity = 64;
  serve::Server server(core::Accelerator(*fx.qnet, accel_config(1)), config);

  // Warm request: the window is empty, p99 = 0 <= target fails the
  // overload gate... (0 > 1e-9 is false) so it is admitted normally.
  serve::RequestOptions warm;
  warm.num_samples = 2;
  warm.bayes_layers = 1;
  const serve::Response warm_response = server.infer(request_for(batch, 0, warm, 100));
  EXPECT_FALSE(warm_response.shed_downgraded);

  // Routed request while overloaded: admitted DOWNGRADED — answered from
  // the screening pass with escalation suppressed.
  serve::RequestOptions routed;
  routed.num_samples = 10;
  routed.bayes_layers = 2;
  routed.use_uncertainty_router = true;
  routed.screening_samples = 2;
  routed.entropy_threshold_nats = -1.0;  // would always escalate if allowed
  const serve::Response downgraded = server.infer(request_for(batch, 1, routed, 101));
  EXPECT_TRUE(downgraded.shed_downgraded);
  EXPECT_FALSE(downgraded.escalated);
  EXPECT_EQ(downgraded.samples_used, 2);

  // Non-routed request while overloaded: rejected by predicted cost with
  // the distinct QueueFullError (backlog 0 + cost > 1e-9 ms target).
  serve::RequestOptions direct;
  direct.num_samples = 10;
  direct.bayes_layers = 2;
  std::future<serve::Response> rejected = server.submit(request_for(batch, 2, direct, 102));
  EXPECT_THROW(rejected.get(), serve::QueueFullError);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.shed_rejected, 1u);
  EXPECT_EQ(stats.shed_downgraded, 1u);
  // submitted == served(full) + downgraded-then-served + rejected.
  EXPECT_EQ(stats.submitted,
            (stats.requests - stats.shed_downgraded) + stats.shed_downgraded +
                stats.rejected);

  // Bit-identity of the downgrade: a direct never-escalating request with
  // the SAME stream id serves the identical screening pass.
  serve::ServerConfig plain_config;
  plain_config.max_batch = 1;
  plain_config.num_threads = 1;
  serve::Server plain(core::Accelerator(*fx.qnet, accel_config(1)), plain_config);
  serve::RequestOptions never_escalate = routed;
  never_escalate.entropy_threshold_nats = 1e9;
  const serve::Response reference = plain.infer(request_for(batch, 1, never_escalate, 101));
  EXPECT_FALSE(reference.escalated);
  EXPECT_EQ(downgraded.probs.max_abs_diff(reference.probs), 0.0f);
  EXPECT_EQ(downgraded.predicted_class, reference.predicted_class);
  EXPECT_EQ(downgraded.samples_used, reference.samples_used);

  // Replay: every logged decision is reproduced exactly by re-applying the
  // pure rule to its recorded inputs, in submission order.
  const std::vector<serve::AdmissionRecord> log = server.admission_log();
  ASSERT_EQ(log.size(), 3u);
  for (std::size_t i = 1; i < log.size(); ++i)
    EXPECT_LT(log[i - 1].submit_seq, log[i].submit_seq);
  EXPECT_EQ(log[0].action, serve::AdmissionAction::admit);
  EXPECT_EQ(log[1].action, serve::AdmissionAction::downgrade);
  EXPECT_EQ(log[2].action, serve::AdmissionAction::reject);
  for (const serve::AdmissionRecord& record : log)
    EXPECT_EQ(serve::adaptive_admission(record.inputs), record.action);
}

// A full queue rejects under adaptive exactly like the hard bound promises,
// and the admission ring keeps only the newest `admission_log_capacity`.
TEST(Server, AdaptiveHonoursQueueBoundAndLogCapacity) {
  auto& fx = fixture();
  const data::Batch batch = fx.dataset->batch(0, 8);

  serve::ServerConfig config;
  config.max_batch = 1;
  config.num_threads = 1;
  config.max_queue_depth = 1;
  config.overload_policy = serve::OverloadPolicy::adaptive;
  config.latency_target_ms = 1e9;  // never "overloaded": only the bound sheds
  config.calibrate_cost_model = false;
  config.admission_log_capacity = 4;
  serve::Server server(core::Accelerator(*fx.qnet, accel_config(1)), config);

  serve::RequestOptions slow;
  slow.num_samples = 400;
  slow.bayes_layers = 2;
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(server.submit(request_for(batch, i, slow, 200 + i)));
  int served = 0;
  int rejected = 0;
  for (auto& future : futures) {
    try {
      (void)future.get();
      ++served;
    } catch (const serve::QueueFullError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(served + rejected, 8);
  EXPECT_GE(rejected, 4);  // 8 arrivals vs 1 in flight + 1 queued

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests + stats.rejected, stats.submitted);
  EXPECT_EQ(stats.shed_rejected, stats.rejected);  // all via the adaptive path
  EXPECT_EQ(stats.shed_downgraded, 0u);
  EXPECT_LE(stats.peak_queue_depth, 1u);

  const std::vector<serve::AdmissionRecord> log = server.admission_log();
  EXPECT_EQ(log.size(), 4u);  // ring capacity, newest retained
  for (std::size_t i = 1; i < log.size(); ++i)
    EXPECT_LT(log[i - 1].submit_seq, log[i].submit_seq);
  for (const serve::AdmissionRecord& record : log) {
    EXPECT_EQ(serve::adaptive_admission(record.inputs), record.action);
    if (record.action == serve::AdmissionAction::reject) {
      EXPECT_TRUE(record.inputs.queue_full);
    }
  }
}

// --- stats window -----------------------------------------------------------

TEST(Server, StatsReportWindowCountAndSingleSamplePercentiles) {
  auto& fx = fixture();
  const data::Batch batch = fx.dataset->batch(0, 1);
  serve::Server server(core::Accelerator(*fx.qnet, accel_config(1)), {});

  // Empty window: zero percentiles, zero count (not an exception).
  serve::ServerStats before = server.stats();
  EXPECT_EQ(before.latency_window_count, 0u);
  EXPECT_DOUBLE_EQ(before.latency_p50_ms, 0.0);
  EXPECT_DOUBLE_EQ(before.latency_p99_ms, 0.0);

  (void)server.infer(request_for(batch, 0, serve::RequestOptions{}, 7));
  const serve::ServerStats after = server.stats();
  EXPECT_EQ(after.latency_window_count, 1u);
  // A single sample is every percentile of itself.
  EXPECT_GT(after.latency_p50_ms, 0.0);
  EXPECT_DOUBLE_EQ(after.latency_p50_ms, after.latency_p95_ms);
  EXPECT_DOUBLE_EQ(after.latency_p95_ms, after.latency_p99_ms);
}

TEST(LatencyPercentile, EdgeCases) {
  // Single sample: every percentile including the extremes.
  EXPECT_DOUBLE_EQ(serve::latency_percentile({7.5}, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(serve::latency_percentile({7.5}, 99.0), 7.5);
  EXPECT_DOUBLE_EQ(serve::latency_percentile({7.5}, 100.0), 7.5);
  // pct = 0 / 100 hit the exact min / max, no interpolation overshoot.
  EXPECT_DOUBLE_EQ(serve::latency_percentile({3.0, 1.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(serve::latency_percentile({3.0, 1.0, 2.0}, 100.0), 3.0);
  // Empty window and out-of-range / NaN pct are rejected.
  EXPECT_THROW(serve::latency_percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(serve::latency_percentile({1.0}, 100.5), std::invalid_argument);
  EXPECT_THROW(serve::latency_percentile({1.0}, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

}  // namespace
}  // namespace bnn
