#include <gtest/gtest.h>

#include "baseline/device_model.h"
#include "baseline/published.h"
#include "nn/models.h"

namespace bnn::baseline {
namespace {

nn::NetworkDesc lenet_desc() {
  util::Rng rng(1);
  nn::Model model = nn::make_lenet5(rng);
  return model.describe();
}

TEST(DeviceModel, GpuFasterThanCpu) {
  const nn::NetworkDesc desc = lenet_desc();
  const double cpu = device_latency_ms(desc, cpu_i9_9900k(), 4, 50);
  const double gpu = device_latency_ms(desc, gpu_rtx2080_super(), 4, 50);
  EXPECT_LT(gpu, cpu);
}

TEST(DeviceModel, MonotoneInSamples) {
  const nn::NetworkDesc desc = lenet_desc();
  double previous = 0.0;
  for (int samples : {1, 5, 20, 100}) {
    const double latency = device_latency_ms(desc, cpu_i9_9900k(), 2, samples);
    EXPECT_GT(latency, previous);
    previous = latency;
  }
}

TEST(DeviceModel, SoftwareIcMakesSmallSuffixCheap) {
  // {L=1, S=100} must cost far less than 100 full passes (the baselines use
  // software IC, which is what the paper's Table III numbers imply).
  const nn::NetworkDesc desc = lenet_desc();
  const double full_pass = device_latency_ms(desc, cpu_i9_9900k(), 0, 1);
  const double mc = device_latency_ms(desc, cpu_i9_9900k(), 1, 100);
  EXPECT_LT(mc, 100.0 * full_pass * 0.5);
}

TEST(DeviceModel, DeterministicNetworkIgnoresSamples) {
  const nn::NetworkDesc desc = lenet_desc();
  EXPECT_DOUBLE_EQ(device_latency_ms(desc, cpu_i9_9900k(), 0, 1),
                   device_latency_ms(desc, cpu_i9_9900k(), 0, 100));
}

TEST(DeviceModel, LargerBayesPortionCostsMore) {
  util::Rng rng(2);
  nn::Model model = nn::make_resnet18(rng, 10, 16);
  const nn::NetworkDesc desc = model.describe();
  const double small = device_latency_ms(desc, gpu_rtx2080_super(), 1, 50);
  const double large = device_latency_ms(desc, gpu_rtx2080_super(), 6, 50);
  EXPECT_LT(small, large);
}

TEST(Published, TableFourDerivedColumns) {
  const AcceleratorRow v = vibnn();
  EXPECT_NEAR(v.energy_efficiency(), 9.75, 0.01);     // 59.6 / 6.11
  EXPECT_NEAR(v.compute_efficiency(), 0.174, 0.001);  // 59.6 / 342

  const AcceleratorRow b = bynqnet();
  EXPECT_NEAR(b.energy_efficiency(), 8.78, 0.01);     // 24.22 / 2.76
  EXPECT_NEAR(b.compute_efficiency(), 0.110, 0.001);  // 24.22 / 220

  const AcceleratorRow ours = our_accelerator(1590.0, 1473);
  EXPECT_NEAR(ours.energy_efficiency(), 35.3, 0.1);   // 1590 / 45
  EXPECT_NEAR(ours.compute_efficiency(), 1.079, 0.002);
}

TEST(Published, PaperHeadlineRatiosHold) {
  // "up to 4x higher energy efficiency and 9x better compute efficiency".
  const AcceleratorRow ours = our_accelerator(1590.0, 1473);
  EXPECT_GT(ours.energy_efficiency() / vibnn().energy_efficiency(), 3.0);
  EXPECT_GT(ours.compute_efficiency() / bynqnet().compute_efficiency(), 6.0);
}

}  // namespace
}  // namespace bnn::baseline
