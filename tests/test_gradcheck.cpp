// Numeric gradient checks: every differentiable layer's backward pass is
// validated against central finite differences of a scalar loss.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/elementwise.h"
#include "nn/linear.h"
#include "nn/models.h"
#include "nn/pooling.h"
#include "train/loss.h"

namespace bnn::nn {
namespace {

// Scalar test loss: weighted sum of the outputs (weights fixed per call so
// forward() is a deterministic function of the input between perturbations).
float weighted_sum(const Tensor& y, const Tensor& weights) {
  float acc = 0.0f;
  for (std::int64_t i = 0; i < y.numel(); ++i) acc += y[i] * weights[i];
  return acc;
}

// Checks d(loss)/d(input) for a single-input layer. `prepare` is invoked
// before every forward so stochastic layers can be re-seeded identically.
void check_input_grad(Layer& layer, Tensor x, double tolerance = 2e-2,
                      const std::function<void()>& prepare = [] {}) {
  layer.set_training(true);
  util::Rng rng(123);

  prepare();
  Tensor y = layer.forward(x);
  const Tensor loss_weights = Tensor::randn(y.shape(), rng);
  Tensor analytic = layer.backward(loss_weights);

  const float eps = 1e-3f;
  util::Rng pick(7);
  for (int trial = 0; trial < 12; ++trial) {
    const std::int64_t i = pick.uniform_int(0, static_cast<int>(x.numel() - 1));
    const float saved = x[i];
    x[i] = saved + eps;
    prepare();
    const float up = weighted_sum(layer.forward(x), loss_weights);
    x[i] = saved - eps;
    prepare();
    const float down = weighted_sum(layer.forward(x), loss_weights);
    x[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric, tolerance)
        << "input grad mismatch at flat index " << i;
  }
  // Restore the layer's caches for any follow-up parameter check.
  prepare();
  (void)layer.forward(x);
  (void)layer.backward(loss_weights);
}

// Checks d(loss)/d(theta) for each parameter of the layer.
void check_param_grads(Layer& layer, Tensor x, double tolerance = 2e-2) {
  layer.set_training(true);
  util::Rng rng(321);
  Tensor y = layer.forward(x);
  const Tensor loss_weights = Tensor::randn(y.shape(), rng);
  for (Param* p : layer.params()) p->zero_grad();
  (void)layer.backward(loss_weights);

  const float eps = 1e-3f;
  util::Rng pick(19);
  for (Param* p : layer.params()) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::int64_t i = pick.uniform_int(0, static_cast<int>(p->value.numel() - 1));
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const float up = weighted_sum(layer.forward(x), loss_weights);
      p->value[i] = saved - eps;
      const float down = weighted_sum(layer.forward(x), loss_weights);
      p->value[i] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], numeric, tolerance) << "param grad mismatch at index " << i;
    }
  }
}

TEST(GradCheck, Conv2d) {
  util::Rng rng(2);
  Conv2d conv(3, 5, 3, 2, 1);
  conv.init_kaiming(rng);
  Tensor x = Tensor::randn({2, 3, 7, 7}, rng);
  check_input_grad(conv, x);
  check_param_grads(conv, x);
}

TEST(GradCheck, Conv2dNoBiasUnitStride) {
  util::Rng rng(3);
  Conv2d conv(2, 4, 5, 1, 2, /*has_bias=*/false);
  conv.init_kaiming(rng);
  Tensor x = Tensor::randn({1, 2, 9, 9}, rng);
  check_input_grad(conv, x);
  check_param_grads(conv, x);
}

TEST(GradCheck, Linear) {
  util::Rng rng(4);
  Linear fc(6, 4);
  fc.init_kaiming(rng);
  Tensor x = Tensor::randn({3, 6}, rng);
  check_input_grad(fc, x);
  check_param_grads(fc, x);
}

TEST(GradCheck, BatchNorm) {
  util::Rng rng(5);
  BatchNorm2d bn(4);
  for (std::int64_t i = 0; i < 4; ++i) {
    bn.gamma().value[i] = static_cast<float>(rng.uniform(0.5, 1.5));
    bn.beta().value[i] = static_cast<float>(rng.normal());
  }
  Tensor x = Tensor::randn({4, 4, 3, 3}, rng, 1.0f, 2.0f);
  check_input_grad(bn, x, 5e-2);
  check_param_grads(bn, x, 5e-2);
}

TEST(GradCheck, ReLUAwayFromKink) {
  util::Rng rng(6);
  ReLU relu;
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  // Push values away from the non-differentiable origin.
  for (std::int64_t i = 0; i < x.numel(); ++i)
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.3f;
  check_input_grad(relu, x);
}

TEST(GradCheck, MaxPoolAwayFromTies) {
  util::Rng rng(7);
  MaxPool2d pool(2);
  Tensor x = Tensor::randn({2, 2, 6, 6}, rng, 0.0f, 5.0f);  // ties are improbable
  check_input_grad(pool, x);
}

TEST(GradCheck, AvgPool) {
  util::Rng rng(8);
  AvgPool2d pool(2);
  Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
  check_input_grad(pool, x);
}

TEST(GradCheck, GlobalAvgPool) {
  util::Rng rng(9);
  GlobalAvgPool pool;
  Tensor x = Tensor::randn({2, 3, 5, 5}, rng);
  check_input_grad(pool, x);
}

TEST(GradCheck, Flatten) {
  util::Rng rng(10);
  Flatten flatten;
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  check_input_grad(flatten, x);
}

TEST(GradCheck, SoftmaxLayer) {
  util::Rng rng(11);
  Softmax softmax;
  Tensor x = Tensor::randn({3, 5}, rng);
  check_input_grad(softmax, x, 1e-2);
}

TEST(GradCheck, McDropoutWithFrozenMask) {
  util::Rng rng(12);
  McDropout drop(0.5);
  drop.set_active(true);
  Tensor x = Tensor::randn({2, 8, 3, 3}, rng);
  // Re-seed before every forward so each perturbation sees the same mask.
  check_input_grad(drop, x, 2e-2, [&drop] { drop.reseed(777); });
}

TEST(GradCheck, SoftmaxCrossEntropyGradient) {
  util::Rng rng(13);
  Tensor logits = Tensor::randn({4, 6}, rng);
  const std::vector<int> labels{0, 3, 5, 2};
  const train::LossResult base = train::softmax_cross_entropy(logits, labels);

  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); i += 5) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const double up = train::softmax_cross_entropy(logits, labels).loss;
    logits[i] = saved - eps;
    const double down = train::softmax_cross_entropy(logits, labels).loss;
    logits[i] = saved;
    EXPECT_NEAR(base.grad[i], (up - down) / (2.0 * eps), 1e-3);
  }
}

// End-to-end: gradients through a whole DAG (residual model) match numeric
// differences of the training loss w.r.t. a sample of weights.
TEST(GradCheck, WholeNetworkThroughResidualDag) {
  util::Rng rng(14);
  Model model = make_resnet18(rng, /*num_classes=*/4, /*base_width=*/4);
  model.set_bayesian_last(0);
  Network& net = model.net();
  net.set_training(true);

  Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
  const std::vector<int> labels{1, 3};

  net.zero_grad();
  const Tensor logits = net.forward(x);
  const train::LossResult loss = train::softmax_cross_entropy(logits, labels);
  (void)net.backward(loss.grad);

  std::vector<Param*> params = net.params();
  util::Rng pick(15);
  const float eps = 1e-2f;
  int checked = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Param* p = params[static_cast<std::size_t>(
        pick.uniform_int(0, static_cast<int>(params.size() - 1)))];
    const std::int64_t i = pick.uniform_int(0, static_cast<int>(p->value.numel() - 1));
    const float saved = p->value[i];
    p->value[i] = saved + eps;
    const double up = train::softmax_cross_entropy(net.forward(x), labels).loss;
    p->value[i] = saved - eps;
    const double down = train::softmax_cross_entropy(net.forward(x), labels).loss;
    p->value[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(p->grad[i], numeric, 5e-2) << "whole-net grad mismatch";
    ++checked;
  }
  EXPECT_EQ(checked, 10);
}

}  // namespace
}  // namespace bnn::nn
