// Reproduces Table IV: comparison with the published BNN accelerators
// VIBNN and BYNQNet. Our throughput is measured by the performance model on
// ResNet-101 with MCD applied to every layer (L = N), as in the paper; the
// comparators' numbers are their published figures (both support only
// three-layer fully-connected BNNs).
#include <cstdio>

#include "baseline/published.h"
#include "core/perf_model.h"
#include "core/resource_model.h"
#include "nn/netdesc.h"
#include "util/table.h"

int main() {
  using namespace bnn;
  std::printf("=== Table IV reproduction: comparison with BNN accelerators ===\n\n");

  // Our side: ResNet-101, every layer Bayesian, paper hardware config.
  core::PerfConfig perf;  // PC=64, PF=64, PV=1 @ 225 MHz
  const nn::NetworkDesc resnet101 = nn::describe_resnet101();
  const core::RunStats stats =
      core::estimate_mc(resnet101, perf, resnet101.num_sites(), /*num_samples=*/10,
                        /*use_intermediate_caching=*/true);
  const core::ResourceUsage usage = core::estimate_resources(
      perf.nne, resnet101, core::arria10_sx660(), 16, 2);

  const baseline::AcceleratorRow rows[3] = {
      baseline::vibnn(), baseline::bynqnet(),
      baseline::our_accelerator(stats.throughput_gops(), usage.dsps_used)};

  util::TextTable table;
  table.set_header({"", rows[0].name, rows[1].name, rows[2].name});
  auto add = [&table, &rows](const std::string& label, auto getter, int digits) {
    table.add_row({label, util::fixed(getter(rows[0]), digits),
                   util::fixed(getter(rows[1]), digits), util::fixed(getter(rows[2]), digits)});
  };
  table.add_row({"FPGA", rows[0].fpga, rows[1].fpga, rows[2].fpga});
  table.add_row({"Workload", rows[0].workload, rows[1].workload, rows[2].workload});
  add("Clock [MHz]", [](const baseline::AcceleratorRow& r) { return r.clock_mhz; }, 2);
  add("DSPs", [](const baseline::AcceleratorRow& r) { return static_cast<double>(r.dsps); }, 0);
  add("Power [W] (down=better)", [](const baseline::AcceleratorRow& r) { return r.power_w; }, 2);
  add("Throughput [GOP/s] (up)", [](const baseline::AcceleratorRow& r) { return r.throughput_gops; }, 1);
  add("Energy eff. [GOP/s/W] (up)",
      [](const baseline::AcceleratorRow& r) { return r.energy_efficiency(); }, 2);
  add("Compute eff. [GOP/s/DSP] (up)",
      [](const baseline::AcceleratorRow& r) { return r.compute_efficiency(); }, 3);
  std::printf("%s\n", table.to_string().c_str());

  const baseline::AcceleratorRow& ours = rows[2];
  std::printf("Headline ratios (paper: 'up to 4x energy efficiency, 9x compute "
              "efficiency'):\n");
  std::printf("  energy efficiency vs VIBNN   : %.1fx (paper ~3.4x)\n",
              ours.energy_efficiency() / rows[0].energy_efficiency());
  std::printf("  energy efficiency vs BYNQNet : %.1fx (paper ~3.8x)\n",
              ours.energy_efficiency() / rows[1].energy_efficiency());
  std::printf("  compute efficiency vs VIBNN  : %.1fx (paper ~6.2x)\n",
              ours.compute_efficiency() / rows[0].compute_efficiency());
  std::printf("  compute efficiency vs BYNQNet: %.1fx (paper ~8.9x)\n",
              ours.compute_efficiency() / rows[1].compute_efficiency());
  std::printf("\nPaper row for reference: 1590 GOP/s, 33.3 GOP/s/W, 1.079 GOP/s/DSP.\n");
  std::printf("(Note: the paper prints BYNQNet compute efficiency as 0.121; the\n"
              "reported 24.22 GOP/s over 220 DSPs works out to 0.110 - we compute the\n"
              "derived columns from the reported primaries.)\n");
  std::printf("\nOur modelled ResNet-101 run: %.0f GOP/s over %lld MACs, %.2f ms for "
              "S=10 samples.\n",
              stats.throughput_gops(), static_cast<long long>(stats.macs),
              stats.latency_ms);
  return 0;
}
