// Shared setup for the benchmark harnesses: the paper's three evaluation
// pairs (LeNet-5 / synth-digits, reduced VGG-11 / synth-SVHN, reduced
// ResNet-18 / synth-objects), trained once and cached on disk so every
// bench binary does not retrain from scratch (cache dir ./bnn_bench_cache,
// safe to delete).
#ifndef BNN_BENCH_COMMON_H
#define BNN_BENCH_COMMON_H

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>

#include "data/synth.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "train/trainer.h"

namespace bnnbench {

inline std::string cache_dir() {
  const std::filesystem::path dir = "bnn_bench_cache";
  std::filesystem::create_directories(dir);
  return dir.string();
}

struct Workload {
  bnn::nn::Model model;
  bnn::data::Dataset train_set;
  bnn::data::Dataset test_set;
  std::string dataset_name;
};

// Trains (or loads from cache) a model. Training is DETERMINISTIC (all MCD
// sites inactive) and dropout is applied post-hoc at inference — the
// channel-reduced substitute models collapse under channel dropout during
// training, and post-hoc MCD on a pretrained network is exactly what the
// paper's reference [5] (Stochastic-YOLO) does. Recorded in DESIGN.md and
// EXPERIMENTS.md.
inline void train_or_load(bnn::nn::Model& model, const bnn::data::Dataset& train_set,
                          const std::string& tag, int epochs, double learning_rate,
                          double lr_decay, int train_bayes_layers = 0) {
  const std::string path = cache_dir() + "/" + tag + ".weights";
  const int saved_bayes = model.bayesian_layers();
  model.set_bayesian_last(train_bayes_layers);
  if (bnn::nn::load_model_state(model, path)) {
    std::printf("[setup] loaded cached weights for %s\n", tag.c_str());
  } else {
    std::printf("[setup] training %s (%d epochs, %d images)...\n", tag.c_str(), epochs,
                train_set.size());
    bnn::train::TrainConfig config;
    config.epochs = epochs;
    config.batch_size = 32;
    config.learning_rate = learning_rate;
    config.lr_decay = lr_decay;
    bnn::train::fit(model, train_set, config);
    bnn::nn::save_model_state(model, path);
  }
  model.set_bayesian_last(saved_bayes);
}

// LeNet-5 on synthetic digits (the paper's MNIST slot).
inline Workload prepare_lenet5() {
  bnn::util::Rng rng(101);
  bnn::nn::Model model = bnn::nn::make_lenet5(rng);
  bnn::util::Rng data_rng(102);
  bnn::data::Dataset digits = bnn::data::make_synth_digits(1200, data_rng);
  auto [train_set, test_set] = digits.split(1050);
  train_or_load(model, train_set, "lenet5_digits_det", 5, 0.05, 0.7);
  return {std::move(model), std::move(train_set), std::move(test_set), "synth-digits"};
}

// Channel-reduced VGG-11 on synthetic SVHN (the paper's SVHN slot).
inline Workload prepare_vgg11() {
  bnn::util::Rng rng(201);
  bnn::nn::Model model = bnn::nn::make_vgg11(rng, 10, /*width_divisor=*/8);
  bnn::util::Rng data_rng(202);
  bnn::data::Dataset svhn = bnn::data::make_synth_svhn(1300, data_rng);
  auto [train_set, test_set] = svhn.split(1150);
  train_or_load(model, train_set, "vgg11_svhn_det", 14, 0.02, 0.85);
  return {std::move(model), std::move(train_set), std::move(test_set), "synth-svhn"};
}

// Channel-reduced ResNet-18 on synthetic objects (the paper's CIFAR slot).
inline Workload prepare_resnet18() {
  bnn::util::Rng rng(301);
  bnn::nn::Model model = bnn::nn::make_resnet18(rng, 10, /*base_width=*/8);
  bnn::util::Rng data_rng(302);
  bnn::data::Dataset objects = bnn::data::make_synth_objects(1300, data_rng);
  auto [train_set, test_set] = objects.split(1150);
  train_or_load(model, train_set, "resnet18_objects_det", 6, 0.02, 0.7);
  return {std::move(model), std::move(train_set), std::move(test_set), "synth-objects"};
}

// The {L, S} pairs of the paper's Table III rows, resolved per network.
inline std::pair<int, int> l_one(const bnn::nn::Model&) { return {1, 100}; }
inline std::pair<int, int> l_two_thirds(const bnn::nn::Model& model) {
  const int sites = model.num_sites();
  int l = (2 * sites + 2) / 3;  // round(2N/3)
  if (l < 1) l = 1;
  return {l, 50};
}

}  // namespace bnnbench

#endif  // BNN_BENCH_COMMON_H
