// Microbenchmark of the simulator itself: how fast the cycle-counted NNE
// datapath and the untiled reference executor run on the host. Useful for
// sizing experiments; not a claim about FPGA speed (that is what the cycle
// model is for).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "data/synth.h"
#include "core/nne.h"
#include "nn/bitpack_kernels.h"
#include "nn/gemm_kernels.h"
#include "nn/models.h"
#include "quant/qops.h"
#include "quant/qplan.h"
#include "train/trainer.h"

namespace {

using namespace bnn;

struct Setup {
  Setup() {
    util::Rng rng(51);
    model = std::make_unique<nn::Model>(nn::make_tiny_cnn(rng, 10, 1, 12));
    util::Rng data_rng(52);
    data::Dataset digits = data::make_synth_digits(64, data_rng);
    nn::Tensor small({digits.size(), 1, 12, 12});
    for (int n = 0; n < digits.size(); ++n)
      for (int y = 0; y < 12; ++y)
        for (int x = 0; x < 12; ++x)
          small.v4(n, 0, y, x) = digits.images().v4(n, 0, 2 + 2 * y, 2 + 2 * x);
    dataset = std::make_unique<data::Dataset>(std::move(small), digits.labels(), 10);
    model->set_bayesian_last(0);
    qnet = std::make_unique<quant::QuantNetwork>(quant::quantize_model(*model, *dataset));
    image = quant::quantize_image(dataset->images(), 0, qnet->input);
  }
  std::unique_ptr<nn::Model> model;
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<quant::QuantNetwork> qnet;
  quant::QTensor image;
};

Setup& setup() {
  static Setup instance;
  return instance;
}

void bm_reference_layer(benchmark::State& state) {
  auto& s = setup();
  const quant::QLayer& layer = s.qnet->layers.front();
  for (auto _ : state) {
    auto out = quant::ref_run_layer(layer, s.image, nullptr, false, nullptr,
                                    s.qnet->dropout_keep);
    benchmark::DoNotOptimize(out.data.data());
  }
  state.SetItemsProcessed(state.iterations() * layer.geom.macs());
}
BENCHMARK(bm_reference_layer);

void bm_nne_layer(benchmark::State& state) {
  auto& s = setup();
  const quant::QLayer& layer = s.qnet->layers.front();
  core::NneConfig config;
  config.pc = static_cast<int>(state.range(0));
  config.pf = static_cast<int>(state.range(1));
  config.pv = static_cast<int>(state.range(2));
  for (auto _ : state) {
    auto result = core::nne_run_layer(layer, s.image, nullptr, false, nullptr,
                                      s.qnet->dropout_keep, config);
    benchmark::DoNotOptimize(result.output.data.data());
  }
  state.SetItemsProcessed(state.iterations() * layer.geom.macs());
  state.SetLabel("PC/PF/PV=" + std::to_string(state.range(0)) + "/" +
                 std::to_string(state.range(1)) + "/" + std::to_string(state.range(2)));
}
BENCHMARK(bm_nne_layer)->Args({8, 8, 1})->Args({64, 64, 1})->Args({128, 128, 16});

// The NNE channel-tile inner product in isolation: plain per-term loop vs
// kernels::dot_i8_zp on a VGG-class term count (in_c=128, 3x3 kernel).
void bm_int8_dot_scalar(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  util::Rng rng(1234);
  std::vector<std::int8_t> x(static_cast<std::size_t>(len)), w(static_cast<std::size_t>(len));
  for (auto& v : x) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  const std::int32_t zp = -3;
  for (auto _ : state) {
    std::int32_t acc = 0;
    for (int t = 0; t < len; ++t)
      acc += (static_cast<std::int32_t>(x[static_cast<std::size_t>(t)]) - zp) *
             static_cast<std::int32_t>(w[static_cast<std::size_t>(t)]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(bm_int8_dot_scalar)->Arg(1152);

void bm_int8_dot_kernel(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  util::Rng rng(1234);
  std::vector<std::int8_t> x(static_cast<std::size_t>(len)), w(static_cast<std::size_t>(len));
  for (auto& v : x) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  const std::int32_t zp = -3;
  for (auto _ : state) {
    std::int32_t acc = nn::kernels::dot_i8_zp(x.data(), w.data(), len, zp);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(bm_int8_dot_kernel)->Arg(1152);

// Gather form used by interior conv positions (offset table replaces the
// per-term division/modulo index math).
void bm_int8_dot_gather(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  util::Rng rng(1234);
  std::vector<std::int8_t> x(static_cast<std::size_t>(len) * 4), w(static_cast<std::size_t>(len));
  for (auto& v : x) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  std::vector<std::int32_t> offsets(static_cast<std::size_t>(len));
  for (int t = 0; t < len; ++t)
    offsets[static_cast<std::size_t>(t)] = rng.uniform_int(0, 4 * len - 1);
  const std::int32_t zp = -3;
  for (auto _ : state) {
    std::int32_t acc = nn::kernels::dot_i8_zp_gather(x.data(), offsets.data(), w.data(), len, zp);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(bm_int8_dot_gather)->Arg(1152);

// The bit-packed tier on the same VGG-class term count: packed_row_dot
// (XOR+popcount over 64-term words) against the int8 rows above. The
// activation plane is packed once outside the loop — in the real path one
// pack per input position is amortized over every output filter, so the
// steady-state per-filter cost is exactly this dot (bm_bitpack_pack times
// the amortized pack itself).
void bm_bitpack_dot(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  util::Rng rng(1234);
  quant::QLayer layer;
  layer.geom.op = nn::HwLayer::Op::linear;
  layer.geom.in_c = len;
  layer.geom.out_c = 1;
  layer.weights.resize(static_cast<std::size_t>(len));
  for (auto& v : layer.weights)
    v = static_cast<std::int8_t>(rng.uniform_int(0, 1) != 0 ? 5 : -5);
  const quant::LayerExecPlan plan = quant::build_layer_exec_plan(layer);
  const std::int8_t lo = -7, hi = 9;
  std::vector<std::int8_t> x(static_cast<std::size_t>(len));
  for (auto& v : x) v = rng.uniform_int(0, 1) != 0 ? hi : lo;
  std::vector<std::uint64_t> xbits(static_cast<std::size_t>(plan.words));
  const std::int32_t x_pop = nn::kernels::pack_eq_bits(x.data(), len, hi, xbits.data());
  const std::int32_t zp = -3;
  for (auto _ : state) {
    std::int32_t acc = quant::packed_row_dot(plan, 0, xbits.data(), x_pop, lo - zp,
                                             static_cast<std::int32_t>(hi) - lo);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(bm_bitpack_dot)->Arg(1152);

void bm_bitpack_pack(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  util::Rng rng(1234);
  const std::int8_t lo = -7, hi = 9;
  std::vector<std::int8_t> x(static_cast<std::size_t>(len));
  for (auto& v : x) v = rng.uniform_int(0, 1) != 0 ? hi : lo;
  std::vector<std::uint64_t> xbits(
      static_cast<std::size_t>(nn::kernels::bit_words(len)));
  for (auto _ : state) {
    std::int32_t pop = nn::kernels::pack_eq_bits(x.data(), len, hi, xbits.data());
    benchmark::DoNotOptimize(pop);
    benchmark::DoNotOptimize(xbits.data());
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(bm_bitpack_pack)->Arg(1152);

void bm_full_network_reference(benchmark::State& state) {
  auto& s = setup();
  for (auto _ : state) {
    auto outputs = quant::ref_forward(*s.qnet, s.image, 0, nullptr);
    benchmark::DoNotOptimize(outputs.back().data.data());
  }
  state.SetItemsProcessed(state.iterations() * s.qnet->describe().total_macs());
}
BENCHMARK(bm_full_network_reference);

}  // namespace

BENCHMARK_MAIN();
