// Reproduces Table I: for each evaluation network, the {L, S} configuration
// chosen by each optimization mode, with FPGA/CPU/GPU latency, aPE, ECE and
// accuracy (mean +/- std over repeats).
//
// Absolute numbers differ from the paper (synthetic data, retrained reduced
// models, simulated hardware) — the reproduction targets are the trends:
// Opt-Latency picks {1, small-S}; Opt-Accuracy/-Uncertainty pick large S
// with a substantial Bayesian portion; FPGA latency < GPU < CPU.
//
// The {L} x {S} metric sweeps run THROUGH THE THREAD POOL: every grid
// point's evaluation fans its (image, sample) pairs across the shared
// pool (SoftwareMetricsProvider num_threads = 0), and mc_predict's
// bit-identity across thread counts guarantees the sweep result equals a
// sequential run exactly. `--smoke` proves that on the fast test workload
// (pooled sweep vs sequential sweep, candidate-by-candidate equality) —
// the bench.sweep_smoke ctest entry.
//
//   ./build/bench/table1_optimization_modes [--smoke]
#include <cstdio>
#include <cstring>

#include "baseline/device_model.h"
#include "bayes/predictive.h"
#include "common.h"
#include "core/dse.h"
#include "core/software_metrics.h"
#include "data/synth.h"
#include "metrics/metrics.h"
#include "util/summary.h"
#include "util/table.h"

namespace {

using namespace bnn;

void run_network(bnnbench::Workload& workload, util::TextTable& table, int repeats) {
  nn::Model& model = workload.model;
  const nn::NetworkDesc desc = model.describe();

  // Metric evaluation sets (kept small: everything reruns S times).
  const data::Dataset test = workload.test_set.subset(0, std::min(100, workload.test_set.size()));
  util::Rng noise_rng(7);
  const data::Dataset noise = data::make_gaussian_noise(60, workload.train_set, noise_rng);

  core::SoftwareMetricsProvider provider(model, test, noise);
  core::DseOptions options;
  options.sample_grid = {3, 10, 30, 100};  // subsampled paper grid

  const baseline::DeviceModel cpu = baseline::cpu_i9_9900k();
  const baseline::DeviceModel gpu = baseline::gpu_rtx2080_super();
  const core::PerfConfig perf{core::NneConfig{}, options.ddr};

  table.add_row({"-- " + model.name() + " (" + workload.dataset_name + ", N=" +
                     std::to_string(model.num_sites()) + " sites) --",
                 "", "", "", "", "", "", "", ""});
  for (core::OptMode mode : {core::OptMode::latency, core::OptMode::accuracy,
                             core::OptMode::uncertainty, core::OptMode::confidence}) {
    options.mode = mode;
    const core::DseResult result = core::run_dse(desc, provider, options);
    const core::Candidate& best = result.best();

    // Repeat the metric evaluation with fresh mask streams for mean+/-std.
    util::MeanStd acc_stat, ape_stat, ece_stat;
    for (int repeat = 0; repeat < repeats; ++repeat) {
      model.set_bayesian_last(best.bayes_layers);
      model.reseed_sites(9000 + static_cast<std::uint64_t>(repeat) * 131);
      bayes::PredictiveOptions predictive;
      predictive.num_samples = best.num_samples;
      predictive.num_threads = 0;  // pooled pair loop; bit-identical anyway
      const nn::Tensor test_probs = bayes::mc_predict(model, test.images(), predictive);
      acc_stat.add(metrics::accuracy(test_probs, test.labels()) * 100.0);
      ece_stat.add(metrics::expected_calibration_error(test_probs, test.labels()) * 100.0);
      const nn::Tensor noise_probs = bayes::mc_predict(model, noise.images(), predictive);
      ape_stat.add(metrics::average_predictive_entropy(noise_probs));
    }

    const double fpga_ms =
        core::estimate_mc(desc, perf, best.bayes_layers, best.num_samples, true).latency_ms;
    const double cpu_ms =
        baseline::device_latency_ms(desc, cpu, best.bayes_layers, best.num_samples);
    const double gpu_ms =
        baseline::device_latency_ms(desc, gpu, best.bayes_layers, best.num_samples);

    table.add_row({core::opt_mode_name(mode),
                   std::to_string(best.bayes_layers) + ", " + std::to_string(best.num_samples),
                   util::fixed(fpga_ms, 2), util::fixed(cpu_ms, 2), util::fixed(gpu_ms, 2),
                   util::mean_std(ape_stat.mean(), ape_stat.stddev(), 2),
                   util::mean_std(ece_stat.mean(), ece_stat.stddev(), 2),
                   util::mean_std(acc_stat.mean(), acc_stat.stddev(), 2),
                   fpga_ms < gpu_ms && gpu_ms < cpu_ms ? "FPGA<GPU<CPU" : "see note"});
  }
  table.add_separator();
}

// --- pooled-sweep smoke (the bench.sweep_smoke ctest entry) ----------------
// Runs the full DSE {L} x {S} sweep twice on the fast test workload — once
// with every evaluation fanned across the shared pool, once strictly
// sequential — and hard-fails unless every candidate's metrics and the
// chosen configuration agree EXACTLY. This is the cheap-in-CI form of the
// paper-grid sweeps: correctness is thread-count independent by the
// mc_predict bit-identity contract, speed follows physical cores.
int run_sweep_smoke() {
  util::Rng rng(31);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
  util::Rng data_rng(32);
  data::Dataset digits = data::make_synth_digits_small(96, data_rng);
  auto [train_set, test_set] = digits.split(64);
  {
    train::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 16;
    train::fit(model, train_set, config);
  }
  util::Rng noise_rng(7);
  const data::Dataset noise = data::make_gaussian_noise(24, train_set, noise_rng);
  const nn::NetworkDesc desc = model.describe();

  core::DseOptions options;
  options.sample_grid = {2, 4};
  options.bayes_grid = {1, 2};

  util::TextTable table("pooled vs sequential {L} x {S} sweep (must agree exactly)");
  table.set_header({"mode", "{L, S} pooled", "{L, S} sequential", "candidates", "equal"});
  bool all_equal = true;
  for (core::OptMode mode : {core::OptMode::latency, core::OptMode::accuracy,
                             core::OptMode::uncertainty, core::OptMode::confidence}) {
    options.mode = mode;
    core::SoftwareMetricsProvider pooled(model, test_set, noise, /*seed=*/1,
                                         /*num_threads=*/0);
    const core::DseResult a = core::run_dse(desc, pooled, options);
    core::SoftwareMetricsProvider sequential(model, test_set, noise, /*seed=*/1,
                                             /*num_threads=*/1);
    const core::DseResult b = core::run_dse(desc, sequential, options);

    bool equal = a.candidates.size() == b.candidates.size() && a.best_index == b.best_index;
    for (std::size_t i = 0; equal && i < a.candidates.size(); ++i) {
      const core::Candidate& ca = a.candidates[i];
      const core::Candidate& cb = b.candidates[i];
      equal = ca.bayes_layers == cb.bayes_layers && ca.num_samples == cb.num_samples &&
              ca.latency_ms == cb.latency_ms &&
              ca.metrics.accuracy == cb.metrics.accuracy &&
              ca.metrics.ape == cb.metrics.ape && ca.metrics.ece == cb.metrics.ece;
    }
    all_equal = all_equal && equal;
    const auto point = [](const core::DseResult& result) {
      const core::Candidate& best = result.best();
      return "{" + std::to_string(best.bayes_layers) + ", " +
             std::to_string(best.num_samples) + "}";
    };
    table.add_row({core::opt_mode_name(mode), point(a), point(b),
                   std::to_string(a.candidates.size()), equal ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());
  if (!all_equal) {
    std::fprintf(stderr, "FATAL: pooled sweep diverged from the sequential sweep\n");
    return 1;
  }
  std::printf("Pooled sweep matches the sequential sweep candidate-for-candidate.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) return run_sweep_smoke();

  std::printf("=== Table I reproduction: optimization-mode configurations ===\n");
  std::printf("(paper: LeNet-5 Opt-Latency {1,3} 0.42ms ... see EXPERIMENTS.md)\n\n");

  util::TextTable table;
  table.set_header({"Opt-Mode", "{L, S}", "FPGA [ms]", "CPU [ms]", "GPU [ms]", "aPE [nats]",
                    "ECE [%]", "Accuracy [%]", "latency order"});

  const int repeats = 3;  // paper uses 5; trimmed for single-core runtime
  {
    bnnbench::Workload lenet = bnnbench::prepare_lenet5();
    run_network(lenet, table, repeats);
  }
  {
    bnnbench::Workload vgg = bnnbench::prepare_vgg11();
    run_network(vgg, table, repeats);
  }
  {
    bnnbench::Workload resnet = bnnbench::prepare_resnet18();
    run_network(resnet, table, repeats);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Reading the table: Opt-Latency always lands on {L=1, S=3}; the metric\n"
              "modes spend latency for aPE/ECE/accuracy; the FPGA column beats GPU and\n"
              "CPU at batch 1 throughout - the paper's Table I structure.\n");
  return 0;
}
