// Request-level serving throughput: requests/sec through serve::Server as a
// function of the coalescing batch size, the replica count, and the
// backpressure queue depth, with and without the Opt-Uncertainty router.
//
// This is the end-to-end software analogue of the paper's serving story:
// a stream of single-image requests with small per-request S, coalesced
// into accelerator batches whose flattened (image, sample) pair loop keeps
// the shared thread pool busy. Replica rows run R accelerator replicas
// behind one queue (the software analogue of replicating processing
// engines); queue-depth rows bound the queue and serve under blocking
// backpressure. The router rows additionally screen every request with a
// cheap low-S pass and only escalate high-entropy inputs to the full
// sample count.
//
// Determinism is verified across EVERY configuration: request r is
// submitted with the fixed stream id r, so every batch size, replica
// count, and queue depth must produce bit-identical responses to the
// single-replica max_batch=1 run. A divergence is a hard failure.
//
//   ./build/bench/serve_throughput [--requests N] [--S N] [--repeats N]
//                                  [--replicas-max R] [--json PATH]
//
// --json writes the BENCH_serve.json artifact (uploaded by CI) so
// successive PRs have a recorded serving-throughput trajectory.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/synth.h"
#include "nn/models.h"
#include "serve/server.h"
#include "train/trainer.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

using namespace bnn;

struct WaveConfig {
  int max_batch = 4;
  bool router = false;
  int replicas = 1;
  int queue_depth = 0;  // 0 = unbounded
};

struct Row {
  WaveConfig config;
  double req_per_sec = 0.0;
  serve::ServerStats stats;
  bool bit_identical = true;
};

void write_json(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "serve_throughput: cannot open %s for writing\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"serve_throughput\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"max_batch\": %d, \"router\": %s, \"replicas\": %d, "
                 "\"queue_depth\": %d, \"req_per_sec\": %.1f, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"batches\": %llu, "
                 "\"escalated\": %llu, \"peak_queue_depth\": %llu, "
                 "\"bit_identical\": %s}%s\n",
                 r.config.max_batch, r.config.router ? "true" : "false",
                 r.config.replicas, r.config.queue_depth, r.req_per_sec,
                 r.stats.latency_p50_ms, r.stats.latency_p95_ms, r.stats.latency_p99_ms,
                 static_cast<unsigned long long>(r.stats.batches),
                 static_cast<unsigned long long>(r.stats.escalations),
                 static_cast<unsigned long long>(r.stats.peak_queue_depth),
                 r.bit_identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  int num_requests = 48;
  int num_samples = 8;
  int repeats = 3;
  int replicas_max = 4;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
      num_requests = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--S") == 0 && i + 1 < argc)
      num_samples = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc)
      repeats = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--replicas-max") == 0 && i + 1 < argc)
      replicas_max = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  // Tiny quantized CNN on 12x12 synthetic digits (the fast test workload).
  util::Rng rng(21);
  nn::Model tiny = nn::make_tiny_cnn(rng, 10, 1, 12);
  util::Rng data_rng(22);
  data::Dataset dataset = data::make_synth_digits_small(96, data_rng);
  {
    train::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 16;
    train::fit(tiny, dataset, config);
  }
  quant::QuantNetwork qnet = quant::quantize_model(tiny, dataset);

  std::printf(
      "serving throughput: %d requests, S=%d (screening S=2), tiny CNN int8, "
      "%u hardware threads\n\n",
      num_requests, num_samples, std::thread::hardware_concurrency());

  auto run_wave = [&](const WaveConfig& wave) {
    core::AcceleratorConfig accel_config;
    accel_config.nne.pc = 16;
    accel_config.nne.pf = 8;
    accel_config.nne.pv = 4;
    accel_config.sampler_seed = 5;
    accel_config.num_threads = 0;  // all shared-pool lanes

    serve::ServerConfig server_config;
    server_config.max_batch = wave.max_batch;
    server_config.num_replicas = wave.replicas;
    server_config.max_queue_depth = wave.queue_depth;
    // Blocking backpressure so every request resolves and the determinism
    // check covers the full wave (fail-fast rejection is exercised by the
    // test suite, not the throughput table).
    server_config.overload_policy = serve::OverloadPolicy::block;
    serve::Server server(core::Accelerator(qnet, accel_config), server_config);

    serve::RequestOptions options;
    options.num_samples = num_samples;
    options.bayes_layers = 2;
    options.use_uncertainty_router = wave.router;
    options.screening_samples = 2;
    options.entropy_threshold_nats = 1.2;

    std::vector<serve::Response> responses(static_cast<std::size_t>(num_requests));
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(static_cast<std::size_t>(num_requests));
    for (int r = 0; r < num_requests; ++r) {
      serve::Request request;
      request.image = dataset.images().batch_row(r % dataset.size());
      request.options = options;
      request.stream_id = static_cast<std::uint64_t>(r);  // batch-independent
      futures.push_back(server.submit(std::move(request)));
    }
    for (int r = 0; r < num_requests; ++r)
      responses[static_cast<std::size_t>(r)] = futures[static_cast<std::size_t>(r)].get();
    return std::make_pair(std::move(responses), server.stats());
  };

  std::vector<Row> rows;
  auto measure = [&](const WaveConfig& wave,
                     const std::vector<serve::Response>* reference) {
    Row row;
    row.config = wave;
    std::vector<serve::Response> responses;
    // Keep responses AND stats from the best repeat, so each reported row
    // is internally consistent (req/s and the latency percentiles come
    // from the same run).
    double seconds = 1e300;
    for (int r = 0; r < repeats; ++r) {
      util::Stopwatch watch;
      auto [wave_responses, wave_stats] = run_wave(wave);
      const double elapsed = watch.elapsed_seconds();
      if (elapsed < seconds) {
        seconds = elapsed;
        responses = std::move(wave_responses);
        row.stats = wave_stats;
      }
    }
    row.req_per_sec = num_requests / seconds;
    if (reference != nullptr) {
      for (int r = 0; r < num_requests; ++r)
        row.bit_identical =
            row.bit_identical &&
            responses[static_cast<std::size_t>(r)].probs.max_abs_diff(
                (*reference)[static_cast<std::size_t>(r)].probs) == 0.0f &&
            responses[static_cast<std::size_t>(r)].escalated ==
                (*reference)[static_cast<std::size_t>(r)].escalated;
    }
    rows.push_back(row);
    return responses;
  };

  const auto add_row = [&](util::TextTable& table, const Row& row) {
    table.add_row({std::to_string(row.config.max_batch), row.config.router ? "on" : "off",
                   std::to_string(row.config.replicas),
                   row.config.queue_depth == 0 ? std::string("inf")
                                               : std::to_string(row.config.queue_depth),
                   util::fixed(row.req_per_sec, 1), util::fixed(row.stats.latency_p50_ms, 2),
                   util::fixed(row.stats.latency_p95_ms, 2),
                   util::fixed(row.stats.latency_p99_ms, 2),
                   std::to_string(row.stats.batches), std::to_string(row.stats.escalations),
                   row.bit_identical ? "yes" : "NO"});
  };

  util::TextTable table(
      "serve::Server — requests/sec vs batch size, replica count, queue depth");
  table.set_header({"max_batch", "router", "R", "queue", "req/s", "p50 ms", "p95 ms",
                    "p99 ms", "batches", "escalated", "bit-identical"});

  // --- coalescing sweep (R=1), router off/on, as in earlier PRs ------------
  // The router-on max_batch=1 responses double as the replica sweep's
  // bit-identity reference (same wave, same stream ids).
  std::vector<serve::Response> router_reference;
  for (const bool router : {false, true}) {
    std::vector<serve::Response> reference;
    for (const int max_batch : {1, 4, 16}) {
      WaveConfig wave;
      wave.max_batch = max_batch;
      wave.router = router;
      std::vector<serve::Response> responses =
          measure(wave, max_batch == 1 ? nullptr : &reference);
      if (max_batch == 1) reference = std::move(responses);
      add_row(table, rows.back());
    }
    if (router) router_reference = std::move(reference);
    table.add_separator();
  }

  // --- replica sweep: R accelerator replicas behind one queue --------------
  {
    const std::vector<serve::Response>& reference = router_reference;
    for (int replicas = 2; replicas <= replicas_max; replicas *= 2) {
      WaveConfig wave;
      wave.max_batch = 4;
      wave.router = true;
      wave.replicas = replicas;
      measure(wave, &reference);
      add_row(table, rows.back());
    }
    // Bounded queue under blocking backpressure: same responses, the
    // submitters just pace themselves against max_queue_depth.
    WaveConfig bounded;
    bounded.max_batch = 4;
    bounded.router = true;
    bounded.replicas = std::min(2, replicas_max);
    bounded.queue_depth = 8;
    measure(bounded, &reference);
    add_row(table, rows.back());
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading the table: larger max_batch coalesces more requests per\n"
      "accelerator pass (fewer batches, more flattened pairs per parallel_for);\n"
      "replica rows (R>1) pull per-shape batch groups concurrently, each\n"
      "replica on its slice of the shared pool — throughput scales with\n"
      "physical cores, so a 1-core container reports flat req/s. The bounded\n"
      "queue row serves the same wave under blocking backpressure\n"
      "(max_queue_depth=8): submitters pace themselves, peak queue depth\n"
      "stays at the bound, and responses are unchanged. Router rows answer\n"
      "confident inputs from the 2-sample screening pass and escalate the\n"
      "rest to S=%d. Responses are bit-identical across ALL rows by\n"
      "construction (fixed per-request stream ids) — checked, hard failure\n"
      "otherwise.\n",
      num_samples);

  bool all_identical = true;
  for (const Row& row : rows) all_identical = all_identical && row.bit_identical;
  if (json_path != nullptr) write_json(json_path, rows);
  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: batch size, replica count, or queue depth changed a response\n");
    return 1;
  }
  return 0;
}
