// Request-level serving throughput: requests/sec through serve::Server as a
// function of the coalescing batch size, with and without the
// Opt-Uncertainty router.
//
// This is the end-to-end software analogue of the paper's serving story:
// a stream of single-image requests with small per-request S, coalesced
// into accelerator batches whose flattened (image, sample) pair loop keeps
// the shared thread pool busy. The router rows additionally screen every
// request with a cheap low-S pass and only escalate high-entropy inputs to
// the full sample count — on mostly-confident traffic this trades a little
// screening work for skipping most full-S passes.
//
// Determinism is verified across configurations: request r is submitted
// with the fixed stream id r, so every batch size must produce bit-identical
// responses to the max_batch=1 run.
//
//   ./build/bench/serve_throughput [--requests N] [--S N] [--repeats N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "data/synth.h"
#include "nn/models.h"
#include "serve/server.h"
#include "train/trainer.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

using namespace bnn;

double best_seconds(int repeats, const std::function<void()>& body) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    util::Stopwatch watch;
    body();
    best = std::min(best, watch.elapsed_seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  int num_requests = 48;
  int num_samples = 8;
  int repeats = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
      num_requests = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--S") == 0 && i + 1 < argc)
      num_samples = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc)
      repeats = std::atoi(argv[++i]);
  }

  // Tiny quantized CNN on 12x12 synthetic digits (the fast test workload).
  util::Rng rng(21);
  nn::Model tiny = nn::make_tiny_cnn(rng, 10, 1, 12);
  util::Rng data_rng(22);
  data::Dataset dataset = data::make_synth_digits_small(96, data_rng);
  {
    train::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 16;
    train::fit(tiny, dataset, config);
  }
  quant::QuantNetwork qnet = quant::quantize_model(tiny, dataset);

  std::printf(
      "serving throughput: %d requests, S=%d (screening S=2), tiny CNN int8, "
      "%u hardware threads\n\n",
      num_requests, num_samples, std::thread::hardware_concurrency());

  auto run_wave = [&](int max_batch, bool router) {
    core::AcceleratorConfig accel_config;
    accel_config.nne.pc = 16;
    accel_config.nne.pf = 8;
    accel_config.nne.pv = 4;
    accel_config.sampler_seed = 5;
    accel_config.num_threads = 0;  // all shared-pool lanes

    serve::ServerConfig server_config;
    server_config.max_batch = max_batch;
    serve::Server server(core::Accelerator(qnet, accel_config), server_config);

    serve::RequestOptions options;
    options.num_samples = num_samples;
    options.bayes_layers = 2;
    options.use_uncertainty_router = router;
    options.screening_samples = 2;
    options.entropy_threshold_nats = 1.2;

    std::vector<serve::Response> responses(static_cast<std::size_t>(num_requests));
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(static_cast<std::size_t>(num_requests));
    for (int r = 0; r < num_requests; ++r) {
      serve::Request request;
      request.image = dataset.images().batch_row(r % dataset.size());
      request.options = options;
      request.stream_id = static_cast<std::uint64_t>(r);  // batch-independent
      futures.push_back(server.submit(std::move(request)));
    }
    for (int r = 0; r < num_requests; ++r)
      responses[static_cast<std::size_t>(r)] = futures[static_cast<std::size_t>(r)].get();
    return std::make_pair(std::move(responses), server.stats());
  };

  util::TextTable table("serve::Server — requests/sec vs coalescing batch size");
  table.set_header({"max_batch", "router", "req/s", "p50 ms", "p95 ms", "p99 ms", "batches",
                    "escalated", "bit-identical"});

  for (const bool router : {false, true}) {
    std::vector<serve::Response> reference;
    for (const int max_batch : {1, 4, 16}) {
      std::vector<serve::Response> responses;
      serve::ServerStats stats;
      const double seconds = best_seconds(repeats, [&] {
        auto [wave_responses, wave_stats] = run_wave(max_batch, router);
        responses = std::move(wave_responses);
        stats = wave_stats;
      });
      if (max_batch == 1) reference = responses;
      bool identical = true;
      for (int r = 0; r < num_requests; ++r)
        identical = identical &&
                    responses[static_cast<std::size_t>(r)].probs.max_abs_diff(
                        reference[static_cast<std::size_t>(r)].probs) == 0.0f &&
                    responses[static_cast<std::size_t>(r)].escalated ==
                        reference[static_cast<std::size_t>(r)].escalated;
      table.add_row({std::to_string(max_batch), router ? "on" : "off",
                     util::fixed(num_requests / seconds, 1),
                     util::fixed(stats.latency_p50_ms, 2), util::fixed(stats.latency_p95_ms, 2),
                     util::fixed(stats.latency_p99_ms, 2), std::to_string(stats.batches),
                     std::to_string(stats.escalations), identical ? "yes" : "NO"});
      if (!identical) {
        std::fprintf(stderr, "FATAL: batch size changed a response\n");
        return 1;
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading the table: larger max_batch coalesces more requests per\n"
      "accelerator pass (fewer batches, more flattened pairs per parallel_for);\n"
      "router rows answer confident inputs from the 2-sample screening pass and\n"
      "escalate the rest to S=%d. The p50/p95/p99 columns are end-to-end\n"
      "submit-to-response latency from ServerStats (note: whole-wave submission\n"
      "means later requests queue behind earlier batches, so tail latency grows\n"
      "with the wave, not per-request cost). Responses are bit-identical across\n"
      "all rows by construction (fixed per-request stream ids). Throughput\n"
      "scales with physical cores; a 1-core container reports flat req/s.\n",
      num_samples);
  return 0;
}
