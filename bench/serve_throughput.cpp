// Request-level serving throughput: requests/sec through serve::Server as a
// function of the coalescing batch size, the replica count, the backpressure
// queue depth, the DISPATCH MODE (greedy FIFO vs cost-aware LPT), and the
// OVERLOAD POLICY (fail-fast vs adaptive latency-target shedding), with and
// without the Opt-Uncertainty router.
//
// This is the end-to-end software analogue of the paper's serving story:
// a stream of single-image requests with small per-request S, coalesced
// into accelerator batches whose flattened (image, sample) pair loop keeps
// the shared thread pool busy. Replica rows run R accelerator replicas
// behind one queue; the dispatch table serves a mixed cheap/expensive
// two-shape wave under both dispatch modes (cost-aware ranks per-shape
// batch groups by the paper's own performance model and serves the
// costliest first — LPT); the overload table drives a bounded queue past
// saturation under fail_fast and adaptive shedding.
//
// Determinism is verified across EVERY configuration: request r is
// submitted with the fixed stream id r, so every batch size, replica
// count, queue depth, and dispatch mode must produce bit-identical
// responses to the single-replica max_batch=1 run. Admission decisions may
// differ across overload policies (that is their job) — there the gate
// covers every full-quality served response plus counter consistency
// (submitted == served + rejected). Any divergence is a hard failure.
//
//   ./build/bench/serve_throughput [--requests N] [--S N] [--repeats N]
//                                  [--replicas-max R] [--latency-target MS]
//                                  [--json PATH]
//
// --json writes the BENCH_serve.json artifact (uploaded by CI) so
// successive PRs have a recorded serving-throughput trajectory.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/synth.h"
#include "nn/models.h"
#include "serve/server.h"
#include "train/trainer.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

using namespace bnn;

struct WaveConfig {
  const char* workload = "uniform";  // uniform | mixed | overload
  int max_batch = 4;
  bool router = false;
  int replicas = 1;
  int queue_depth = 0;  // 0 = unbounded
  serve::DispatchMode dispatch = serve::DispatchMode::cost_aware;
  serve::OverloadPolicy policy = serve::OverloadPolicy::block;
  double latency_target_ms = 0.0;
  double arrival_gap_ms = 0.0;  // overload flood inter-arrival time
};

struct Row {
  WaveConfig config;
  double req_per_sec = 0.0;
  serve::ServerStats stats;
  bool bit_identical = true;
  bool counters_consistent = true;
};

const char* dispatch_name(serve::DispatchMode mode) {
  return mode == serve::DispatchMode::fifo ? "fifo" : "cost";
}

const char* policy_name(serve::OverloadPolicy policy) {
  switch (policy) {
    case serve::OverloadPolicy::block: return "block";
    case serve::OverloadPolicy::fail_fast: return "fail_fast";
    case serve::OverloadPolicy::adaptive: return "adaptive";
  }
  return "?";
}

void write_json(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "serve_throughput: cannot open %s for writing\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"serve_throughput\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"max_batch\": %d, \"router\": %s, "
                 "\"replicas\": %d, \"queue_depth\": %d, \"dispatch\": \"%s\", "
                 "\"policy\": \"%s\", \"latency_target_ms\": %.3f, "
                 "\"req_per_sec\": %.1f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"batches\": %llu, \"escalated\": %llu, "
                 "\"rejected\": %llu, \"shed_downgraded\": %llu, "
                 "\"shed_rejected\": %llu, \"peak_queue_depth\": %llu, "
                 "\"bit_identical\": %s}%s\n",
                 r.config.workload, r.config.max_batch, r.config.router ? "true" : "false",
                 r.config.replicas, r.config.queue_depth, dispatch_name(r.config.dispatch),
                 policy_name(r.config.policy), r.config.latency_target_ms, r.req_per_sec,
                 r.stats.latency_p50_ms, r.stats.latency_p95_ms, r.stats.latency_p99_ms,
                 static_cast<unsigned long long>(r.stats.batches),
                 static_cast<unsigned long long>(r.stats.escalations),
                 static_cast<unsigned long long>(r.stats.rejected),
                 static_cast<unsigned long long>(r.stats.shed_downgraded),
                 static_cast<unsigned long long>(r.stats.shed_rejected),
                 static_cast<unsigned long long>(r.stats.peak_queue_depth),
                 r.bit_identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  int num_requests = 48;
  int num_samples = 8;
  int repeats = 3;
  int replicas_max = 4;
  double latency_target_ms = 0.0;  // 0 = auto (2x a measured healthy p99)
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
      num_requests = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--S") == 0 && i + 1 < argc)
      num_samples = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc)
      repeats = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--replicas-max") == 0 && i + 1 < argc)
      replicas_max = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--latency-target") == 0 && i + 1 < argc)
      latency_target_ms = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  // Tiny quantized CNN on 12x12 synthetic digits (the fast test workload).
  util::Rng rng(21);
  nn::Model tiny = nn::make_tiny_cnn(rng, 10, 1, 12);
  util::Rng data_rng(22);
  data::Dataset dataset = data::make_synth_digits_small(96, data_rng);
  {
    train::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 16;
    train::fit(tiny, dataset, config);
  }
  quant::QuantNetwork qnet = quant::quantize_model(tiny, dataset);

  // Linear-first MLP on flattened 7x7 digits: equal-numel flat/square views
  // are both valid inputs, so the mixed S/L wave carries TWO shape groups —
  // the unit the cost-aware dispatcher ranks and balances across replicas.
  util::Rng mlp_rng(91);
  nn::Model mlp = nn::make_mlp3(mlp_rng, 49, 24, 10, nn::MlpActivation::relu,
                                /*with_mcd_sites=*/true);
  util::Rng mlp_data_rng(92);
  data::Dataset mlp_digits = data::make_synth_digits(96, mlp_data_rng);
  nn::Tensor mlp_small({mlp_digits.size(), 49, 1, 1});
  for (int n = 0; n < mlp_digits.size(); ++n)
    for (int y = 0; y < 7; ++y)
      for (int x = 0; x < 7; ++x)
        mlp_small.v4(n, y * 7 + x, 0, 0) = mlp_digits.images().v4(n, 0, 4 * y + 2, 4 * x + 2);
  data::Dataset mlp_dataset(std::move(mlp_small), mlp_digits.labels(), 10);
  {
    train::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 16;
    train::fit(mlp, mlp_dataset, config);
  }
  quant::QuantNetwork mlp_qnet = quant::quantize_model(mlp, mlp_dataset);

  std::printf(
      "serving throughput: %d requests, S=%d (screening S=2), tiny CNN int8, "
      "%u hardware threads\n\n",
      num_requests, num_samples, std::thread::hardware_concurrency());

  core::AcceleratorConfig accel_config;
  accel_config.nne.pc = 16;
  accel_config.nne.pf = 8;
  accel_config.nne.pv = 4;
  accel_config.sampler_seed = 5;
  accel_config.num_threads = 0;  // all shared-pool lanes

  // Request r of a wave, stream id pinned to r (batch-independent).
  //   uniform : every request {S, L=2}, router per wave flag (CNN net);
  //   mixed   : two-shape flat/square MLP wave, 1-in-4 requests heavy
  //             (4S samples, all sites), the rest light (S=2, L=1) — the
  //             mixed S/L traffic the LPT dispatcher targets;
  //   overload: CNN wave, half routed (threshold 1.2), half direct {S, 2}.
  auto make_request = [&](const WaveConfig& wave, int r) {
    serve::Request request;
    if (std::strcmp(wave.workload, "mixed") == 0) {
      request.image = mlp_dataset.images().batch_row(r % mlp_dataset.size());
      if (r % 2 == 1) request.image = request.image.reshaped({1, 1, 7, 7});
      const bool heavy = r % 4 == 3;
      request.options.num_samples = heavy ? 4 * num_samples : 2;
      request.options.bayes_layers = heavy ? -1 : 1;
    } else {
      request.image = dataset.images().batch_row(r % dataset.size());
      request.options.num_samples = num_samples;
      request.options.bayes_layers = 2;
      // The overload wave is 3/4 routed: routed requests are the ones
      // adaptive shedding can downgrade instead of rejecting.
      const bool overload = std::strcmp(wave.workload, "overload") == 0;
      const bool routed = overload ? r % 4 != 0 : wave.router;
      request.options.use_uncertainty_router = routed;
      request.options.screening_samples = 2;
      // Overload traffic always escalates (threshold < 0): every routed
      // request costs screening + full S unless shedding downgrades it —
      // the saving that lets adaptive outlast fail_fast at the same depth.
      request.options.entropy_threshold_nats = overload ? -1.0 : 1.2;
    }
    request.stream_id = static_cast<std::uint64_t>(r);
    return request;
  };

  auto run_wave = [&](const WaveConfig& wave) {
    serve::ServerConfig server_config;
    server_config.max_batch = wave.max_batch;
    server_config.num_replicas = wave.replicas;
    server_config.max_queue_depth = wave.queue_depth;
    server_config.overload_policy = wave.policy;
    server_config.dispatch_mode = wave.dispatch;
    server_config.latency_target_ms = wave.latency_target_ms;
    const quant::QuantNetwork& net =
        std::strcmp(wave.workload, "mixed") == 0 ? mlp_qnet : qnet;
    serve::Server server(core::Accelerator(net, accel_config), server_config);

    // A served slot left empty marks a rejected request (overload waves).
    std::vector<serve::Response> responses(static_cast<std::size_t>(num_requests));
    std::vector<bool> served(static_cast<std::size_t>(num_requests), false);
    std::vector<std::future<serve::Response>> futures(
        static_cast<std::size_t>(num_requests));
    const auto resolve = [&](int r) {
      try {
        responses[static_cast<std::size_t>(r)] = futures[static_cast<std::size_t>(r)].get();
        served[static_cast<std::size_t>(r)] = true;
      } catch (const serve::QueueFullError&) {
        // rejected by backpressure/shedding — legal only in overload waves
      }
    };
    if (std::strcmp(wave.workload, "overload") == 0 && wave.queue_depth > 0) {
      // Two-phase open-loop load generator: a sequential warm phase fills
      // the latency window with healthy service times, then the flood
      // arrives at a FIXED rate faster than the server drains (open loop —
      // arrivals do not wait for service). Batches complete between
      // arrivals, so the p99 window tracks the inflating latencies (arming
      // adaptive shedding mid-flood), and a policy that drains faster (by
      // downgrading work) genuinely sees a less-full queue — rejection
      // counts compare like-for-like against the same arrival process.
      const int warm = std::max(1, num_requests / 4);
      const auto arrival_gap = std::chrono::microseconds(
          static_cast<long>(wave.arrival_gap_ms * 1000.0));
      for (int r = 0; r < warm; ++r) {
        futures[static_cast<std::size_t>(r)] = server.submit(make_request(wave, r));
        resolve(r);
      }
      for (int r = warm; r < num_requests; ++r) {
        futures[static_cast<std::size_t>(r)] = server.submit(make_request(wave, r));
        if (arrival_gap.count() > 0) std::this_thread::sleep_for(arrival_gap);
      }
      for (int r = warm; r < num_requests; ++r) resolve(r);
    } else {
      for (int r = 0; r < num_requests; ++r)
        futures[static_cast<std::size_t>(r)] = server.submit(make_request(wave, r));
      for (int r = 0; r < num_requests; ++r) resolve(r);
    }
    return std::make_tuple(std::move(responses), std::move(served), server.stats());
  };

  std::vector<Row> rows;
  auto measure = [&](const WaveConfig& wave,
                     const std::vector<serve::Response>* reference) {
    Row row;
    row.config = wave;
    std::vector<serve::Response> responses;
    std::vector<bool> served;
    // Keep responses AND stats from the best repeat, so each reported row
    // is internally consistent (req/s and the latency percentiles come
    // from the same run).
    double seconds = 1e300;
    for (int r = 0; r < repeats; ++r) {
      util::Stopwatch watch;
      auto [wave_responses, wave_served, wave_stats] = run_wave(wave);
      const double elapsed = watch.elapsed_seconds();
      if (elapsed < seconds) {
        seconds = elapsed;
        responses = std::move(wave_responses);
        served = std::move(wave_served);
        row.stats = wave_stats;
      }
    }
    row.req_per_sec = num_requests / seconds;
    // submitted == served(full) + shed_downgraded_then_served + rejected.
    row.counters_consistent =
        row.stats.submitted == (row.stats.requests - row.stats.shed_downgraded) +
                                   row.stats.shed_downgraded + row.stats.rejected &&
        row.stats.shed_rejected <= row.stats.rejected &&
        row.stats.shed_downgraded <= row.stats.requests;
    if (reference != nullptr) {
      for (int r = 0; r < num_requests; ++r) {
        if (!served[static_cast<std::size_t>(r)]) continue;  // rejected: admission only
        const serve::Response& live = responses[static_cast<std::size_t>(r)];
        if (live.shed_downgraded) continue;  // screening-only by design
        row.bit_identical =
            row.bit_identical &&
            live.probs.max_abs_diff((*reference)[static_cast<std::size_t>(r)].probs) ==
                0.0f &&
            live.escalated == (*reference)[static_cast<std::size_t>(r)].escalated;
      }
    }
    rows.push_back(row);
    return responses;
  };

  const auto add_row = [&](util::TextTable& table, const Row& row) {
    table.add_row({std::to_string(row.config.max_batch), row.config.router ? "on" : "off",
                   std::to_string(row.config.replicas),
                   row.config.queue_depth == 0 ? std::string("inf")
                                               : std::to_string(row.config.queue_depth),
                   dispatch_name(row.config.dispatch),
                   util::fixed(row.req_per_sec, 1), util::fixed(row.stats.latency_p50_ms, 2),
                   util::fixed(row.stats.latency_p95_ms, 2),
                   util::fixed(row.stats.latency_p99_ms, 2),
                   std::to_string(row.stats.batches), std::to_string(row.stats.escalations),
                   row.bit_identical ? "yes" : "NO"});
  };

  util::TextTable table(
      "serve::Server — requests/sec vs batch size, replica count, queue depth");
  table.set_header({"max_batch", "router", "R", "queue", "dispatch", "req/s", "p50 ms",
                    "p95 ms", "p99 ms", "batches", "escalated", "bit-identical"});

  // --- coalescing sweep (R=1), router off/on, as in earlier PRs ------------
  // The router-on max_batch=1 responses double as the replica sweep's
  // bit-identity reference (same wave, same stream ids).
  std::vector<serve::Response> router_reference;
  for (const bool router : {false, true}) {
    std::vector<serve::Response> reference;
    for (const int max_batch : {1, 4, 16}) {
      WaveConfig wave;
      wave.max_batch = max_batch;
      wave.router = router;
      std::vector<serve::Response> responses =
          measure(wave, max_batch == 1 ? nullptr : &reference);
      if (max_batch == 1) reference = std::move(responses);
      add_row(table, rows.back());
    }
    if (router) router_reference = std::move(reference);
    table.add_separator();
  }

  // --- replica sweep: R accelerator replicas behind one queue --------------
  {
    const std::vector<serve::Response>& reference = router_reference;
    for (int replicas = 2; replicas <= replicas_max; replicas *= 2) {
      WaveConfig wave;
      wave.max_batch = 4;
      wave.router = true;
      wave.replicas = replicas;
      measure(wave, &reference);
      add_row(table, rows.back());
    }
    // Bounded queue under blocking backpressure: same responses, the
    // submitters just pace themselves against max_queue_depth.
    WaveConfig bounded;
    bounded.max_batch = 4;
    bounded.router = true;
    bounded.replicas = std::min(2, replicas_max);
    bounded.queue_depth = 8;
    measure(bounded, &reference);
    add_row(table, rows.back());
  }
  std::printf("%s\n", table.to_string().c_str());

  // --- dispatch-mode sweep: greedy FIFO vs cost-aware LPT ------------------
  // Mixed S/L two-shape MLP wave: light {S=2, L=1} requests under two
  // (C,H,W) views plus 1-in-4 heavy {4S, all-L} requests. The cost-aware
  // dispatcher serves the costliest queued shape group first, so at R>=2
  // the heavy groups stop queueing behind cheap ones — the tail (p99)
  // should be no worse than FIFO's, and on multi-core hosts measurably
  // better. Responses are bit-identical across BOTH modes (hard gate).
  util::TextTable dispatch_table(
      "dispatch mode — mixed S/L two-shape wave (LPT vs greedy FIFO)");
  dispatch_table.set_header({"max_batch", "router", "R", "queue", "dispatch", "req/s",
                             "p50 ms", "p95 ms", "p99 ms", "batches", "escalated",
                             "bit-identical"});
  {
    // Single-threaded one-at-a-time reference for the mixed wave.
    WaveConfig reference_wave;
    reference_wave.workload = "mixed";
    reference_wave.max_batch = 1;
    reference_wave.replicas = 1;
    reference_wave.dispatch = serve::DispatchMode::fifo;
    std::vector<serve::Response> reference = measure(reference_wave, nullptr);
    add_row(dispatch_table, rows.back());
    dispatch_table.add_separator();
    for (int replicas = 1; replicas <= std::min(2, replicas_max); replicas *= 2) {
      double p99[2] = {0.0, 0.0};
      for (const serve::DispatchMode mode :
           {serve::DispatchMode::fifo, serve::DispatchMode::cost_aware}) {
        WaveConfig wave;
        wave.workload = "mixed";
        wave.max_batch = 4;
        wave.replicas = replicas;
        wave.dispatch = mode;
        measure(wave, &reference);
        p99[mode == serve::DispatchMode::cost_aware ? 1 : 0] =
            rows.back().stats.latency_p99_ms;
        add_row(dispatch_table, rows.back());
      }
      std::printf("R=%d: cost-aware p99 %.2f ms vs fifo p99 %.2f ms (%s)\n", replicas,
                  p99[1], p99[0], p99[1] <= p99[0] ? "<= fifo, LPT holds" : "> fifo");
    }
  }
  std::printf("%s\n", dispatch_table.to_string().c_str());

  // --- overload sweep: fail-fast vs adaptive latency-target shedding -------
  // The wave saturates a bounded queue on a deliberately starved server
  // (max_batch 2, one worker lane). fail_fast rejects everything that
  // arrives full; adaptive downgrades routed requests to screening-only
  // first and rejects by predicted cost only while p99 exceeds the target,
  // so it should serve more of the wave at a bounded tail.
  util::TextTable overload_table(
      "overload policy — bounded queue past saturation");
  overload_table.set_header({"policy", "target ms", "req/s", "p50 ms", "p99 ms", "served",
                             "downgraded", "rejected", "shed_rej", "counters",
                             "bit-identical"});
  {
    // Unbounded reference run of the same wave (same stream ids).
    WaveConfig reference_wave;
    reference_wave.workload = "overload";
    reference_wave.max_batch = 1;
    reference_wave.replicas = 1;
    reference_wave.dispatch = serve::DispatchMode::fifo;
    std::vector<serve::Response> reference = measure(reference_wave, nullptr);
    if (latency_target_ms <= 0.0) {
      // Auto target: 2x the p99 of a sequential (unsaturated) probe — an
      // achievable bound that saturated queueing clearly violates, so the
      // adaptive row actually sheds on this host whatever its speed.
      serve::Server probe(core::Accelerator(qnet, accel_config), {});
      WaveConfig probe_wave;
      probe_wave.workload = "overload";
      for (int r = 0; r < std::min(6, num_requests); ++r)
        (void)probe.infer(make_request(probe_wave, r));
      latency_target_ms = 2.0 * std::max(0.05, probe.stats().latency_p99_ms);
      std::printf("auto latency target: %.2f ms (2x sequential-probe p99)\n\n",
                  latency_target_ms);
    }
    for (const serve::OverloadPolicy policy :
         {serve::OverloadPolicy::fail_fast, serve::OverloadPolicy::adaptive}) {
      WaveConfig wave;
      wave.workload = "overload";
      wave.max_batch = 2;
      wave.replicas = 1;
      wave.queue_depth = 6;
      wave.policy = policy;
      // Arrivals 8x faster than the healthy per-request latency (the auto
      // target is 2x it): a genuine overload for both policies.
      wave.arrival_gap_ms = latency_target_ms / 16.0;
      if (policy == serve::OverloadPolicy::adaptive)
        wave.latency_target_ms = latency_target_ms;
      measure(wave, &reference);
      const Row& row = rows.back();
      overload_table.add_row(
          {policy_name(policy),
           policy == serve::OverloadPolicy::adaptive ? util::fixed(latency_target_ms, 1)
                                                     : std::string("-"),
           util::fixed(row.req_per_sec, 1), util::fixed(row.stats.latency_p50_ms, 2),
           util::fixed(row.stats.latency_p99_ms, 2), std::to_string(row.stats.requests),
           std::to_string(row.stats.shed_downgraded), std::to_string(row.stats.rejected),
           std::to_string(row.stats.shed_rejected),
           row.counters_consistent ? "ok" : "BAD", row.bit_identical ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", overload_table.to_string().c_str());

  std::printf(
      "Reading the tables: larger max_batch coalesces more requests per\n"
      "accelerator pass; replica rows (R>1) pull per-shape batch groups\n"
      "concurrently, each replica on its slice of the shared pool —\n"
      "throughput scales with physical cores, so a 1-core container reports\n"
      "flat req/s (and FIFO-vs-LPT p99 differences compress toward zero,\n"
      "since all compute serializes anyway). The dispatch table's cost-aware\n"
      "rows rank queued shape groups with serve::CostModel (the paper's\n"
      "performance model) and serve the costliest first. The overload table\n"
      "saturates a depth-6 queue: adaptive downgrades routed requests to the\n"
      "screening pass and rejects by predicted cost, so its rejection count\n"
      "should undercut fail_fast's. Responses are bit-identical across ALL\n"
      "rows at fixed stream ids (admission decisions excepted, by design) —\n"
      "checked, hard failure otherwise.\n");

  bool all_identical = true;
  bool all_consistent = true;
  for (const Row& row : rows) {
    all_identical = all_identical && row.bit_identical;
    all_consistent = all_consistent && row.counters_consistent;
  }
  if (json_path != nullptr) write_json(json_path, rows);
  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: batch size, replica count, queue depth, or dispatch mode "
                 "changed a response\n");
    return 1;
  }
  if (!all_consistent) {
    std::fprintf(stderr, "FATAL: ServerStats counters inconsistent "
                         "(submitted != served + downgraded + rejected)\n");
    return 1;
  }
  return 0;
}
