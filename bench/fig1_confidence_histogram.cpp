// Reproduces Fig. 1: output-confidence histograms for random Gaussian noise
// input, standard NN vs Bayesian NN. The paper's plot shows the standard
// network piling mass at high confidence while the BNN stays near 1/K.
//
// Paper reference values: NN mass concentrated towards confidence ~1.0,
// BNN mass concentrated at low confidence (normalized frequency ~0.8 in the
// lowest bins).
#include <cstdio>
#include <string>

#include "bayes/predictive.h"
#include "common.h"
#include "metrics/metrics.h"

int main() {
  using namespace bnn;
  std::printf("=== Fig. 1 reproduction: confidence on Gaussian-noise input ===\n\n");

  // Standard NN trained deterministically; the BNN trained with MCD active
  // at every site (Gal & Ghahramani) — LeNet-5 is wide enough for this,
  // unlike the channel-reduced VGG/ResNet substitutes (see DESIGN.md).
  util::Rng rng_nn(401);
  nn::Model point_net = nn::make_lenet5(rng_nn);
  util::Rng data_rng(102);
  data::Dataset digits = data::make_synth_digits(1200, data_rng);
  auto [train_set, test_set] = digits.split(1050);
  bnnbench::train_or_load(point_net, train_set, "lenet5_digits_point", 5, 0.05, 0.7);

  util::Rng rng_bnn(402);
  nn::Model bnn_net = nn::make_lenet5(rng_bnn);
  bnnbench::train_or_load(bnn_net, train_set, "lenet5_digits_bnn", 6, 0.05, 0.7,
                          bnn_net.num_sites());

  util::Rng noise_rng(403);
  data::Dataset noise = data::make_gaussian_noise(300, train_set, noise_rng);

  bayes::PredictiveOptions options;
  options.num_samples = 50;
  point_net.set_bayesian_last(0);
  const nn::Tensor nn_probs = bayes::mc_predict(point_net, noise.images(), options);
  bnn_net.set_bayesian_last(bnn_net.num_sites());
  bnn_net.reseed_sites(404);
  const nn::Tensor bnn_probs = bayes::mc_predict(bnn_net, noise.images(), options);

  const int bins = 9;  // paper plots 0.1..1.0-ish; K=10 -> support [0.1, 1]
  const auto nn_hist = metrics::confidence_histogram(nn_probs, bins);
  const auto bnn_hist = metrics::confidence_histogram(bnn_probs, bins);

  std::printf("confidence bin      standard-NN   Bayesian-NN   (normalized frequency)\n");
  const double lo = 0.1;
  const double width = (1.0 - lo) / bins;
  for (int b = 0; b < bins; ++b) {
    std::printf("  %.2f - %.2f        %6.3f        %6.3f\n", lo + b * width,
                lo + (b + 1) * width, nn_hist[static_cast<std::size_t>(b)],
                bnn_hist[static_cast<std::size_t>(b)]);
  }

  std::printf("\nsummary                          standard-NN   Bayesian-NN   paper trend\n");
  std::printf("  mean confidence on noise        %6.3f        %6.3f        NN >> BNN\n",
              metrics::mean_confidence(nn_probs), metrics::mean_confidence(bnn_probs));
  std::printf("  aPE on noise [nats]             %6.3f        %6.3f        BNN >> NN\n",
              metrics::average_predictive_entropy(nn_probs),
              metrics::average_predictive_entropy(bnn_probs));

  bnn_net.reseed_sites(405);
  const nn::Tensor bnn_test = bayes::mc_predict(bnn_net, test_set.images(), options);
  point_net.set_bayesian_last(0);
  const nn::Tensor nn_test = bayes::mc_predict(point_net, test_set.images(), options);
  std::printf("  test accuracy [%%]               %6.1f        %6.1f        both high\n",
              metrics::accuracy(nn_test, test_set.labels()) * 100.0,
              metrics::accuracy(bnn_test, test_set.labels()) * 100.0);

  const bool shape_holds =
      metrics::mean_confidence(nn_probs) > metrics::mean_confidence(bnn_probs) + 0.1 &&
      metrics::average_predictive_entropy(bnn_probs) >
          metrics::average_predictive_entropy(nn_probs) + 0.3;
  std::printf("\nFig. 1 shape (overconfident NN vs uncertain BNN): %s\n",
              shape_holds ? "REPRODUCED" : "NOT reproduced");
  return shape_holds ? 0 : 1;
}
