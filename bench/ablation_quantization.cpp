// Ablation: the 8-bit linear quantization the accelerator relies on.
// Compares float32 inference against the int8 reference executor on the
// trained LeNet-5: accuracy drop, argmax agreement and logit error — the
// cost of the paper's "two multipliers per DSP" datapath choice.
#include <cstdio>

#include "common.h"
#include "metrics/metrics.h"
#include "quant/qops.h"
#include "util/table.h"

int main() {
  using namespace bnn;
  std::printf("=== Ablation: float32 vs int8 linear quantization ===\n\n");

  bnnbench::Workload workload = bnnbench::prepare_lenet5();
  nn::Model& model = workload.model;
  model.set_bayesian_last(0);
  model.net().set_training(false);

  const data::Dataset test = workload.test_set.subset(0, 150);
  const quant::QuantNetwork qnet = quant::quantize_model(model, workload.train_set);

  const nn::Tensor float_logits = model.net().forward(test.images());

  nn::Tensor q_probs({test.size(), 10});
  int argmax_agree = 0;
  double max_logit_err = 0.0;
  double sum_logit_err = 0.0;
  for (int n = 0; n < test.size(); ++n) {
    const quant::QTensor image = quant::quantize_image(test.images(), n, qnet.input);
    const auto outputs = quant::ref_forward(qnet, image, 0, nullptr);
    const nn::Tensor logits = quant::ref_logits(qnet, outputs.back());
    int fbest = 0;
    int qbest = 0;
    for (int k = 0; k < 10; ++k) {
      q_probs.v2(n, k) = logits.v2(0, k);
      const double err = std::fabs(logits.v2(0, k) - float_logits.v2(n, k));
      max_logit_err = std::max(max_logit_err, err);
      sum_logit_err += err;
      if (float_logits.v2(n, k) > float_logits.v2(n, fbest)) fbest = k;
      if (logits.v2(0, k) > logits.v2(0, qbest)) qbest = k;
    }
    argmax_agree += fbest == qbest ? 1 : 0;
  }

  nn::Tensor float_probs = float_logits;  // argmax-only use below
  const double float_acc = metrics::accuracy(float_probs, test.labels());
  const double q_acc = metrics::accuracy(q_probs, test.labels());

  util::TextTable table;
  table.set_header({"metric", "float32", "int8 (accelerator)"});
  table.add_row({"top-1 accuracy [%]", util::fixed(float_acc * 100.0, 2),
                 util::fixed(q_acc * 100.0, 2)});
  table.add_row({"argmax agreement [%]", "100.00",
                 util::fixed(100.0 * argmax_agree / test.size(), 2)});
  table.add_row({"mean |logit error|", "0",
                 util::fixed(sum_logit_err / (test.size() * 10.0), 4)});
  table.add_row({"max |logit error|", "0", util::fixed(max_logit_err, 4)});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("The paper applies the same post-training 8-bit linear quantization\n"
              "[Jacob et al.] and reports its accuracies from the quantized models;\n"
              "a sub-point accuracy drop justifies the 2-multipliers-per-DSP datapath.\n");
  return 0;
}
