// Reproduces Fig. 6: design-space exploration for ResNet-18 with latency,
// accuracy and uncertainty constraints under Opt-Confidence. Prints every
// candidate point (the scatter), the per-metric global optima (the black
// arrows) and the constrained pick (the red arrow).
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "core/dse.h"
#include "core/software_metrics.h"
#include "util/table.h"

int main() {
  using namespace bnn;
  std::printf("=== Fig. 6 reproduction: constrained DSE for ResNet-18 ===\n\n");

  bnnbench::Workload workload = bnnbench::prepare_resnet18();
  nn::Model& model = workload.model;
  const nn::NetworkDesc desc = model.describe();

  const data::Dataset test = workload.test_set.subset(0, std::min(100, workload.test_set.size()));
  util::Rng noise_rng(17);
  const data::Dataset noise = data::make_gaussian_noise(60, workload.train_set, noise_rng);
  core::SoftwareMetricsProvider provider(model, test, noise);

  core::DseOptions options;
  options.mode = core::OptMode::confidence;
  options.sample_grid = {3, 10, 30, 100};

  // Unconstrained sweep first (the full scatter).
  const core::DseResult sweep = run_dse(desc, provider, options);

  util::TextTable table("candidate points (the Fig. 6 scatter)");
  table.set_header({"L", "S", "latency [ms]", "accuracy [%]", "aPE [nats]", "ECE [%]"});
  for (const core::Candidate& candidate : sweep.candidates)
    table.add_row({std::to_string(candidate.bayes_layers), std::to_string(candidate.num_samples),
                   util::fixed(candidate.latency_ms, 3),
                   util::fixed(candidate.metrics.accuracy * 100.0, 1),
                   util::fixed(candidate.metrics.ape, 3),
                   util::fixed(candidate.metrics.ece * 100.0, 2)});
  std::printf("%s\n", table.to_string().c_str());

  // Global optima per metric — the black arrows of Fig. 6.
  auto extreme = [&sweep](auto better) {
    const core::Candidate* best = &sweep.candidates.front();
    for (const core::Candidate& candidate : sweep.candidates)
      if (better(candidate, *best)) best = &candidate;
    return best;
  };
  const core::Candidate* best_latency = extreme(
      [](const core::Candidate& a, const core::Candidate& b) { return a.latency_ms < b.latency_ms; });
  const core::Candidate* best_accuracy = extreme([](const core::Candidate& a, const core::Candidate& b) {
    return a.metrics.accuracy > b.metrics.accuracy;
  });
  const core::Candidate* best_ape = extreme([](const core::Candidate& a, const core::Candidate& b) {
    return a.metrics.ape > b.metrics.ape;
  });
  const core::Candidate* best_ece = extreme([](const core::Candidate& a, const core::Candidate& b) {
    return a.metrics.ece < b.metrics.ece;
  });
  std::printf("global optima (paper's black arrows):\n");
  std::printf("  Opt-Latency     -> {L=%d, S=%d}\n", best_latency->bayes_layers,
              best_latency->num_samples);
  std::printf("  Opt-Accuracy    -> {L=%d, S=%d}\n", best_accuracy->bayes_layers,
              best_accuracy->num_samples);
  std::printf("  Opt-Uncertainty -> {L=%d, S=%d}\n", best_ape->bayes_layers,
              best_ape->num_samples);
  std::printf("  Opt-Confidence  -> {L=%d, S=%d}\n", best_ece->bayes_layers,
              best_ece->num_samples);

  // Constrained run — the black box + red arrow. Constraints are placed at
  // the median of the observed ranges so the feasible box is non-trivial.
  std::vector<double> latencies, accuracies, apes;
  for (const core::Candidate& candidate : sweep.candidates) {
    latencies.push_back(candidate.latency_ms);
    accuracies.push_back(candidate.metrics.accuracy);
    apes.push_back(candidate.metrics.ape);
  }
  auto median = [](std::vector<double> values) {
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
  };
  options.requirements.max_latency_ms = median(latencies);
  options.requirements.min_accuracy = median(accuracies);
  options.requirements.min_ape = median(apes);
  const core::DseResult constrained = run_dse(desc, provider, options);

  std::printf("\nconstraints (the black box): latency <= %.3f ms, accuracy >= %.1f%%, "
              "aPE >= %.3f\n",
              *options.requirements.max_latency_ms,
              *options.requirements.min_accuracy * 100.0, *options.requirements.min_ape);
  int feasible = 0;
  for (const core::Candidate& candidate : constrained.candidates)
    feasible += candidate.feasible ? 1 : 0;
  std::printf("feasible points: %d of %zu\n", feasible, constrained.candidates.size());
  if (constrained.best_index >= 0) {
    const core::Candidate& pick = constrained.best();
    std::printf("constrained Opt-Confidence pick (the red arrow): {L=%d, S=%d} with "
                "ECE %.2f%%, latency %.3f ms, accuracy %.1f%%, aPE %.3f\n",
                pick.bayes_layers, pick.num_samples, pick.metrics.ece * 100.0,
                pick.latency_ms, pick.metrics.accuracy * 100.0, pick.metrics.ape);
    std::printf("\nFig. 6 behaviour: the framework returns the lowest-ECE point inside\n"
                "the feasible region rather than the global ECE optimum: %s\n",
                (pick.bayes_layers == best_ece->bayes_layers &&
                 pick.num_samples == best_ece->num_samples)
                    ? "global optimum happened to be feasible"
                    : "REPRODUCED (constrained pick differs from global)");
  } else {
    std::printf("no feasible point under the median constraints.\n");
  }
  return 0;
}
