// Shared serving fixtures for bench/tools/examples: the tiny quantized CNN
// on 12x12 synthetic digits and the linear-first MLP on flattened 7x7
// digits, trained deterministically from pinned seeds. Every binary that
// records or replays traces builds its weights HERE, so a trace header's
// workload id names one reproducible network: a trace recorded by
// scenario_gen replays bit-clean in trace_replay (or any other consumer)
// because both processes derive the identical QuantNetwork.
#ifndef BNN_BENCH_SERVE_FIXTURE_H
#define BNN_BENCH_SERVE_FIXTURE_H

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/accelerator.h"
#include "data/synth.h"
#include "nn/models.h"
#include "quant/qnetwork.h"
#include "serve/model_registry.h"
#include "serve/scenario.h"
#include "train/trainer.h"

namespace bnn::bench {

/// TraceMeta::workload_id values of the shared fixtures.
inline constexpr std::uint32_t kWorkloadCnn12 = 1;
inline constexpr std::uint32_t kWorkloadMlp49 = 2;
inline constexpr std::uint32_t kWorkloadCnn12b = 3;

struct ServeFixture {
  quant::QuantNetwork qnet;
  data::Dataset dataset;  ///< stimulus images (indexed modulo size)
  std::uint32_t workload_id = 0;
};

/// The serving benchmark accelerator configuration (PC=16 PF=8 PV=4,
/// sampler seed 5, all shared-pool lanes) — identical across recorder and
/// replayer processes by construction.
inline core::AcceleratorConfig serve_accel_config() {
  core::AcceleratorConfig config;
  config.nne.pc = 16;
  config.nne.pf = 8;
  config.nne.pv = 4;
  config.sampler_seed = 5;
  config.num_threads = 0;
  return config;
}

/// Tiny quantized CNN on 12x12 synthetic digits (the fast test workload).
inline ServeFixture make_cnn12_fixture() {
  util::Rng rng(21);
  nn::Model tiny = nn::make_tiny_cnn(rng, 10, 1, 12);
  util::Rng data_rng(22);
  data::Dataset dataset = data::make_synth_digits_small(96, data_rng);
  train::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 16;
  train::fit(tiny, dataset, config);
  quant::QuantNetwork qnet = quant::quantize_model(tiny, dataset);
  return ServeFixture{std::move(qnet), std::move(dataset), kWorkloadCnn12};
}

/// Linear-first MLP on flattened 7x7 digits: equal-numel flat/square views
/// are both valid inputs, so mixed_shapes scenarios carry two shape groups.
inline ServeFixture make_mlp49_fixture() {
  util::Rng rng(91);
  nn::Model mlp = nn::make_mlp3(rng, 49, 24, 10, nn::MlpActivation::relu,
                                /*with_mcd_sites=*/true);
  util::Rng data_rng(92);
  data::Dataset digits = data::make_synth_digits(96, data_rng);
  nn::Tensor small({digits.size(), 49, 1, 1});
  for (int n = 0; n < digits.size(); ++n)
    for (int y = 0; y < 7; ++y)
      for (int x = 0; x < 7; ++x)
        small.v4(n, y * 7 + x, 0, 0) = digits.images().v4(n, 0, 4 * y + 2, 4 * x + 2);
  data::Dataset dataset(std::move(small), digits.labels(), 10);
  train::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 16;
  train::fit(mlp, dataset, config);
  quant::QuantNetwork qnet = quant::quantize_model(mlp, dataset);
  return ServeFixture{std::move(qnet), std::move(dataset), kWorkloadMlp49};
}

/// Second tiny CNN on the cnn12 topology, trained from different pinned
/// seeds: same geometry as cnn12, different weights. The multi-tenant
/// scenarios serve it as a third tenant, and hot-swap tests publish it as
/// "version 2" of a cnn12-shaped tenant.
inline ServeFixture make_cnn12b_fixture() {
  util::Rng rng(31);
  nn::Model tiny = nn::make_tiny_cnn(rng, 10, 1, 12);
  util::Rng data_rng(32);
  data::Dataset dataset = data::make_synth_digits_small(96, data_rng);
  train::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 16;
  train::fit(tiny, dataset, config);
  quant::QuantNetwork qnet = quant::quantize_model(tiny, dataset);
  return ServeFixture{std::move(qnet), std::move(dataset), kWorkloadCnn12b};
}

/// Process-wide shared instances (tests): train each fixture at most once
/// per binary however many test suites touch it.
inline const ServeFixture& shared_cnn12_fixture() {
  static const ServeFixture fixture = make_cnn12_fixture();
  return fixture;
}
inline const ServeFixture& shared_mlp49_fixture() {
  static const ServeFixture fixture = make_mlp49_fixture();
  return fixture;
}
inline const ServeFixture& shared_cnn12b_fixture() {
  static const ServeFixture fixture = make_cnn12b_fixture();
  return fixture;
}

/// Fixture for a trace header's workload id (standalone replay tools).
inline ServeFixture make_workload_fixture(std::uint32_t workload_id) {
  switch (workload_id) {
    case kWorkloadCnn12: return make_cnn12_fixture();
    case kWorkloadMlp49: return make_mlp49_fixture();
    case kWorkloadCnn12b: return make_cnn12b_fixture();
    default:
      throw std::invalid_argument("serve_fixture: unknown workload id " +
                                  std::to_string(workload_id) +
                                  " (trace recorded against a caller-supplied network?)");
  }
}

/// The canonical registry tenant name of a fixture workload — the name
/// multi-model traces and benches publish the fixture under, so a trace's
/// model table round-trips to the identical registry across processes.
inline const char* workload_model_name(std::uint32_t workload_id) {
  switch (workload_id) {
    case kWorkloadCnn12: return "cnn12";
    case kWorkloadMlp49: return "mlp49";
    case kWorkloadCnn12b: return "cnn12b";
    default:
      throw std::invalid_argument("serve_fixture: unknown workload id " +
                                  std::to_string(workload_id));
  }
}

/// A multi-tenant serving fixture: N fixtures (cnn12, mlp49, cnn12b — in
/// that order) published into one ModelRegistry under their canonical
/// names. Scenario event model_index i routes to names[i]; stimulus images
/// come from fixtures[i] (tenants have different input geometries on
/// purpose — the server resolves the tenant before checking geometry).
struct MultiTenantFixture {
  std::vector<ServeFixture> fixtures;  ///< index = scenario model_index
  std::vector<std::string> names;      ///< registry tenant names, same order
  std::shared_ptr<serve::ModelRegistry> registry;
};

inline MultiTenantFixture make_multi_tenant_fixture(
    int num_models, serve::RegistryConfig registry_config = {}) {
  if (num_models < 1 || num_models > 3)
    throw std::invalid_argument("serve_fixture: num_models must be in [1, 3]");
  MultiTenantFixture multi;
  multi.registry = std::make_shared<serve::ModelRegistry>(registry_config);
  const std::uint32_t workloads[] = {kWorkloadCnn12, kWorkloadMlp49, kWorkloadCnn12b};
  for (int m = 0; m < num_models; ++m) {
    ServeFixture fixture = make_workload_fixture(workloads[m]);
    serve::ModelConfig model_config;
    model_config.workload_id = fixture.workload_id;
    multi.names.emplace_back(workload_model_name(fixture.workload_id));
    multi.registry->publish(multi.names.back(), fixture.qnet, model_config);
    multi.fixtures.push_back(std::move(fixture));
  }
  return multi;
}

/// ScenarioImageFn over a fixture's dataset: image r modulo the dataset
/// size. shape_variant 1 (mixed_shapes, MLP-49 only) reshapes the flat
/// (49,1,1) view to the equal-numel square (1,7,7) view, giving the
/// dispatcher a second batch-group shape.
inline nn::Tensor fixture_image(const ServeFixture& fixture,
                                const serve::ScenarioEvent& event) {
  nn::Tensor image =
      fixture.dataset.images().batch_row(event.image_index % fixture.dataset.size());
  if (event.shape_variant == 1) image = image.reshaped({1, 1, 7, 7});
  return image;
}

/// ScenarioImageFn over a multi-tenant fixture: events index their own
/// tenant's dataset.
inline nn::Tensor multi_fixture_image(const MultiTenantFixture& multi,
                                      const serve::ScenarioEvent& event) {
  return fixture_image(multi.fixtures[static_cast<std::size_t>(event.model_index)],
                       event);
}

}  // namespace bnn::bench

#endif  // BNN_BENCH_SERVE_FIXTURE_H
