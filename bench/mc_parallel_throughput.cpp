// Parallel Monte Carlo throughput: samples/sec of the S-sample loop vs
// worker thread count, for both the float reference path (bayes::mc_predict)
// and the simulated accelerator's functional path (Accelerator::predict).
//
// The paper's accelerator wins its throughput by running Monte Carlo
// samples concurrently in hardware; this bench measures the software
// analogue introduced by the thread-pool runtime. Every configuration must
// be bit-identical to the single-threaded run — the bench verifies that on
// every row (see PredictiveOptions::num_threads / AcceleratorConfig::
// num_threads for the determinism scheme).
//
//   ./build/bench/mc_parallel_throughput [--S N] [--repeats N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bayes/predictive.h"
#include "core/accelerator.h"
#include "data/synth.h"
#include "nn/models.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

using namespace bnn;

const std::vector<int>& thread_grid() {
  static const std::vector<int> grid{1, 2, 4, 8};
  return grid;
}

double best_seconds(int repeats, const std::function<void()>& body) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    util::Stopwatch watch;
    body();
    best = std::min(best, watch.elapsed_seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  int num_samples = 100;
  int repeats = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--S") == 0 && i + 1 < argc)
      num_samples = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc)
      repeats = std::atoi(argv[++i]);
  }

  std::printf("parallel MC throughput: S=%d, repeats=%d (best-of), %u hardware threads\n\n",
              num_samples, repeats, std::thread::hardware_concurrency());

  // --- float path: LeNet-5, full Bayesian, one image ---------------------
  util::Rng rng(11);
  nn::Model model = nn::make_lenet5(rng);
  model.set_bayesian_last(model.num_sites());
  model.reseed_sites(77);
  nn::Tensor image = nn::Tensor::randn({1, 1, 28, 28}, rng);

  bayes::PredictiveOptions options;
  options.num_samples = num_samples;
  options.num_threads = 1;
  const nn::Tensor float_reference = bayes::mc_predict(model, image, options);
  double float_base = 0.0;

  util::TextTable float_table("bayes::mc_predict — LeNet-5, L=N, 1 image");
  float_table.set_header({"threads", "samples/s", "speedup", "bit-identical"});
  for (int threads : thread_grid()) {
    options.num_threads = threads;
    nn::Tensor probs;
    const double seconds =
        best_seconds(repeats, [&] { probs = bayes::mc_predict(model, image, options); });
    const double rate = num_samples / seconds;
    if (threads == 1) float_base = rate;
    const bool identical = probs.max_abs_diff(float_reference) == 0.0f;
    float_table.add_row({std::to_string(threads), util::fixed(rate, 1),
                         util::fixed(rate / float_base, 2) + "x",
                         identical ? "yes" : "NO"});
    if (!identical) {
      std::fprintf(stderr, "FATAL: %d-thread result diverged from sequential\n", threads);
      return 1;
    }
  }
  std::printf("%s\n", float_table.to_string().c_str());

  // --- accelerator functional path: quantized tiny CNN -------------------
  util::Rng accel_rng(21);
  nn::Model tiny = nn::make_tiny_cnn(accel_rng, 10, 1, 12);
  util::Rng data_rng(22);
  data::Dataset digits = data::make_synth_digits(64, data_rng);
  nn::Tensor small({digits.size(), 1, 12, 12});
  for (int n = 0; n < digits.size(); ++n)
    for (int y = 0; y < 12; ++y)
      for (int x = 0; x < 12; ++x)
        small.v4(n, 0, y, x) = digits.images().v4(n, 0, 2 + 2 * y, 2 + 2 * x);
  data::Dataset dataset(std::move(small), digits.labels(), 10);
  quant::QuantNetwork qnet = quant::quantize_model(tiny, dataset);
  const data::Batch batch = dataset.batch(0, 1);
  const int bayes_layers = 2;

  auto accel_config = [](int threads) {
    core::AcceleratorConfig config;
    config.nne.pc = 16;
    config.nne.pf = 8;
    config.nne.pv = 4;
    config.sampler_seed = 5;
    config.num_threads = threads;
    return config;
  };
  core::Accelerator reference(qnet, accel_config(1));
  const nn::Tensor accel_reference =
      reference.predict(batch.images, bayes_layers, num_samples).probs;
  double accel_base = 0.0;

  util::TextTable accel_table("core::Accelerator::predict — tiny CNN int8, L=2, 1 image");
  accel_table.set_header({"threads", "samples/s", "speedup", "bit-identical"});
  for (int threads : thread_grid()) {
    core::Accelerator accelerator(qnet, accel_config(threads));
    nn::Tensor probs;
    const double seconds = best_seconds(repeats, [&] {
      probs = accelerator.predict(batch.images, bayes_layers, num_samples).probs;
    });
    const double rate = num_samples / seconds;
    if (threads == 1) accel_base = rate;
    const bool identical = probs.max_abs_diff(accel_reference) == 0.0f;
    accel_table.add_row({std::to_string(threads), util::fixed(rate, 1),
                         util::fixed(rate / accel_base, 2) + "x",
                         identical ? "yes" : "NO"});
    if (!identical) {
      std::fprintf(stderr, "FATAL: %d-thread result diverged from sequential\n", threads);
      return 1;
    }
  }
  std::printf("%s\n", accel_table.to_string().c_str());

  std::printf("note: speedup saturates at the machine's physical core count.\n");
  return 0;
}
