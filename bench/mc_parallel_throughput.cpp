// Parallel Monte Carlo throughput: (image, sample) pairs/sec of the
// flattened pair loop vs worker thread count, for both the float reference
// path (bayes::mc_predict) and the simulated accelerator's functional path
// (Accelerator::predict / predict_batch).
//
// The paper's accelerator wins its throughput by running Monte Carlo
// samples concurrently in hardware; this bench measures the software
// analogue introduced by the thread-pool runtime. Two workload shapes:
//   - single image, large S (the original sample-parallel rows), and
//   - batched: N > 1 images with SMALL per-image S — the serving shape.
//     Before the pair-space flattening this shape left the pool idle
//     (parallelism was per-image); now all N×S lanes run in one
//     parallel_for over the process-wide shared pool.
// Every configuration must be bit-identical to the single-threaded /
// one-image-at-a-time run — the bench verifies that on every row (see
// PredictiveOptions / AcceleratorConfig::num_threads for the scheme).
//
//   ./build/bench/mc_parallel_throughput [--S N] [--N images] [--repeats N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bayes/predictive.h"
#include "core/accelerator.h"
#include "data/synth.h"
#include "nn/models.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

using namespace bnn;

const std::vector<int>& thread_grid() {
  static const std::vector<int> grid{1, 2, 4, 8};
  return grid;
}

double best_seconds(int repeats, const std::function<void()>& body) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    util::Stopwatch watch;
    body();
    best = std::min(best, watch.elapsed_seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  int num_samples = 100;
  int batch_images = 16;
  int repeats = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--S") == 0 && i + 1 < argc)
      num_samples = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--N") == 0 && i + 1 < argc)
      batch_images = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc)
      repeats = std::atoi(argv[++i]);
  }

  std::printf("parallel MC throughput: S=%d, repeats=%d (best-of), %u hardware threads\n\n",
              num_samples, repeats, std::thread::hardware_concurrency());

  // --- float path: LeNet-5, full Bayesian, one image ---------------------
  util::Rng rng(11);
  nn::Model model = nn::make_lenet5(rng);
  model.set_bayesian_last(model.num_sites());
  model.reseed_sites(77);
  nn::Tensor image = nn::Tensor::randn({1, 1, 28, 28}, rng);

  bayes::PredictiveOptions options;
  options.num_samples = num_samples;
  options.num_threads = 1;
  const nn::Tensor float_reference = bayes::mc_predict(model, image, options);
  double float_base = 0.0;

  util::TextTable float_table("bayes::mc_predict — LeNet-5, L=N, 1 image");
  float_table.set_header({"threads", "samples/s", "speedup", "bit-identical"});
  for (int threads : thread_grid()) {
    options.num_threads = threads;
    nn::Tensor probs;
    const double seconds =
        best_seconds(repeats, [&] { probs = bayes::mc_predict(model, image, options); });
    const double rate = num_samples / seconds;
    if (threads == 1) float_base = rate;
    const bool identical = probs.max_abs_diff(float_reference) == 0.0f;
    float_table.add_row({std::to_string(threads), util::fixed(rate, 1),
                         util::fixed(rate / float_base, 2) + "x",
                         identical ? "yes" : "NO"});
    if (!identical) {
      std::fprintf(stderr, "FATAL: %d-thread result diverged from sequential\n", threads);
      return 1;
    }
  }
  std::printf("%s\n", float_table.to_string().c_str());

  // --- accelerator functional path: quantized tiny CNN -------------------
  util::Rng accel_rng(21);
  nn::Model tiny = nn::make_tiny_cnn(accel_rng, 10, 1, 12);
  util::Rng data_rng(22);
  data::Dataset digits = data::make_synth_digits(64, data_rng);
  nn::Tensor small({digits.size(), 1, 12, 12});
  for (int n = 0; n < digits.size(); ++n)
    for (int y = 0; y < 12; ++y)
      for (int x = 0; x < 12; ++x)
        small.v4(n, 0, y, x) = digits.images().v4(n, 0, 2 + 2 * y, 2 + 2 * x);
  data::Dataset dataset(std::move(small), digits.labels(), 10);
  quant::QuantNetwork qnet = quant::quantize_model(tiny, dataset);
  const data::Batch batch = dataset.batch(0, 1);
  const int bayes_layers = 2;

  auto accel_config = [](int threads) {
    core::AcceleratorConfig config;
    config.nne.pc = 16;
    config.nne.pf = 8;
    config.nne.pv = 4;
    config.sampler_seed = 5;
    config.num_threads = threads;
    return config;
  };
  core::Accelerator reference(qnet, accel_config(1));
  const nn::Tensor accel_reference =
      reference.predict(batch.images, bayes_layers, num_samples).probs;
  double accel_base = 0.0;

  util::TextTable accel_table("core::Accelerator::predict — tiny CNN int8, L=2, 1 image");
  accel_table.set_header({"threads", "samples/s", "speedup", "bit-identical"});
  for (int threads : thread_grid()) {
    core::Accelerator accelerator(qnet, accel_config(threads));
    nn::Tensor probs;
    const double seconds = best_seconds(repeats, [&] {
      probs = accelerator.predict(batch.images, bayes_layers, num_samples).probs;
    });
    const double rate = num_samples / seconds;
    if (threads == 1) accel_base = rate;
    const bool identical = probs.max_abs_diff(accel_reference) == 0.0f;
    accel_table.add_row({std::to_string(threads), util::fixed(rate, 1),
                         util::fixed(rate / accel_base, 2) + "x",
                         identical ? "yes" : "NO"});
    if (!identical) {
      std::fprintf(stderr, "FATAL: %d-thread result diverged from sequential\n", threads);
      return 1;
    }
  }
  std::printf("%s\n", accel_table.to_string().c_str());

  // --- batched float path: N images, small S (the serving shape) ---------
  const int small_s = 4;
  nn::Tensor batch_images_f = nn::Tensor::randn({batch_images, 1, 28, 28}, rng);

  // One-image-at-a-time sequential reference: image n served alone with
  // stream base n — the flattened batched run must match it row for row.
  std::vector<nn::Tensor> float_rows;
  for (int n = 0; n < batch_images; ++n) {
    bayes::PredictiveOptions row_options;
    row_options.num_samples = small_s;
    row_options.image_stream_base = static_cast<std::uint64_t>(n);
    float_rows.push_back(bayes::mc_predict(model, batch_images_f.batch_row(n), row_options));
  }

  util::TextTable float_batched("bayes::mc_predict — LeNet-5, L=N, batched N=" +
                                std::to_string(batch_images) + ", S=" +
                                std::to_string(small_s) + " (N*S flattened pairs)");
  float_batched.set_header({"threads", "pairs/s", "speedup", "bit-identical"});
  const double float_pairs = static_cast<double>(batch_images) * small_s;
  double float_batched_base = 0.0;
  for (int threads : thread_grid()) {
    bayes::PredictiveOptions batched;
    batched.num_samples = small_s;
    batched.num_threads = threads;
    nn::Tensor probs;
    const double seconds =
        best_seconds(repeats, [&] { probs = bayes::mc_predict(model, batch_images_f, batched); });
    const double rate = float_pairs / seconds;
    if (threads == 1) float_batched_base = rate;
    bool identical = true;
    for (int n = 0; n < batch_images; ++n)
      identical = identical &&
                  probs.batch_row(n).max_abs_diff(float_rows[static_cast<std::size_t>(n)]) == 0.0f;
    float_batched.add_row({std::to_string(threads), util::fixed(rate, 1),
                           util::fixed(rate / float_batched_base, 2) + "x",
                           identical ? "yes" : "NO"});
    if (!identical) {
      std::fprintf(stderr, "FATAL: batched result diverged from one-image-at-a-time\n");
      return 1;
    }
  }
  std::printf("%s\n", float_batched.to_string().c_str());

  // --- batched accelerator path: predict_batch over N images -------------
  const int accel_n = std::min(batch_images, dataset.size());
  const data::Batch big_batch = dataset.batch(0, accel_n);
  std::vector<core::Accelerator::ImageRequest> accel_requests;
  for (int n = 0; n < accel_n; ++n)
    accel_requests.push_back({bayes_layers, small_s, static_cast<std::uint64_t>(n)});

  std::vector<nn::Tensor> accel_rows;
  for (int n = 0; n < accel_n; ++n)
    accel_rows.push_back(reference
                             .predict_batch(big_batch.images.batch_row(n),
                                            {accel_requests[static_cast<std::size_t>(n)]})
                             .probs);

  util::TextTable accel_batched("core::Accelerator::predict_batch — tiny CNN int8, L=2, N=" +
                                std::to_string(accel_n) + ", S=" + std::to_string(small_s));
  accel_batched.set_header({"threads", "pairs/s", "speedup", "bit-identical"});
  const double accel_pairs = static_cast<double>(accel_n) * small_s;
  double accel_batched_base = 0.0;
  for (int threads : thread_grid()) {
    core::Accelerator accelerator(qnet, accel_config(threads));
    nn::Tensor probs;
    const double seconds = best_seconds(repeats, [&] {
      probs = accelerator.predict_batch(big_batch.images, accel_requests).probs;
    });
    const double rate = accel_pairs / seconds;
    if (threads == 1) accel_batched_base = rate;
    bool identical = true;
    for (int n = 0; n < accel_n; ++n)
      identical = identical &&
                  probs.batch_row(n).max_abs_diff(accel_rows[static_cast<std::size_t>(n)]) == 0.0f;
    accel_batched.add_row({std::to_string(threads), util::fixed(rate, 1),
                           util::fixed(rate / accel_batched_base, 2) + "x",
                           identical ? "yes" : "NO"});
    if (!identical) {
      std::fprintf(stderr, "FATAL: batched result diverged from one-image-at-a-time\n");
      return 1;
    }
  }
  std::printf("%s\n", accel_batched.to_string().c_str());

  std::printf(
      "note: speedup saturates at the machine's physical core count; the batched\n"
      "tables engage all lanes even at S=%d because the flattened loop spans N*S pairs.\n",
      small_s);
  return 0;
}
