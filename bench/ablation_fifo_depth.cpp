// Ablation: Bernoulli-sampler FIFO depth. The FIFO decouples mask
// production (1 bit/cycle) from the NNE's bursty consumption (one PF-bit
// word per filter tile). This bench measures starvation vs depth under a
// bursty consumption pattern and the M20K cost of deeper FIFOs.
#include <cstdio>

#include "core/bernoulli_sampler.h"
#include "util/table.h"

int main() {
  using namespace bnn::core;
  std::printf("=== Ablation: sampler FIFO depth ===\n\n");

  // Consumption pattern: a burst of `burst` words back-to-back (deep layers
  // with many filter tiles), then a long quiet phase (the PE grinding
  // through channel tiles).
  const int pf = 64;
  const int bursts = 200;
  const int burst = 4;
  const int quiet_cycles = 4 * pf * burst;  // production catches up in quiet phases

  bnn::util::TextTable table("starvation under bursty mask consumption (PF=64)");
  table.set_header({"FIFO depth", "starved pops", "stall cycles", "FIFO bits (D*PF*DW)"});
  for (int depth : {1, 2, 4, 8, 16, 32}) {
    BernoulliSamplerConfig config;
    config.p = 0.25;
    config.pf = pf;
    config.fifo_depth = depth;
    config.seed = 7;
    BernoulliSampler sampler(config);

    int starved = 0;
    std::vector<std::uint8_t> word;
    for (int b = 0; b < bursts; ++b) {
      for (int i = 0; i < quiet_cycles; ++i) sampler.step_cycle();
      for (int w = 0; w < burst; ++w) {
        if (!sampler.pop_word(word)) {
          ++starved;
          // The DU must wait: emulate by producing until a word exists.
          while (!sampler.pop_word(word)) sampler.step_cycle();
        }
      }
    }
    table.add_row({std::to_string(depth), std::to_string(starved),
                   std::to_string(sampler.stall_cycles()),
                   std::to_string(depth * pf * 8)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Reading the table: a depth of ~the largest per-layer burst hides the\n"
              "sampler's serial production entirely; deeper FIFOs only cost memory\n"
              "(MEM_FIFO = D*PF*DW, paper Sec. IV-B) while shallower ones make the\n"
              "Dropout Unit wait. The paper's design uses a FIFO precisely so 'masks\n"
              "pop out when required'.\n");
  return 0;
}
