// Reproduces Fig. 4's claim quantitatively: with last-layer (more generally,
// intermediate-layer) caching, a partial BNN saves (N-L)xS layer executions
// of compute and ~Lx memory accesses. Verified on the figure's two-layer
// example and on the paper's three evaluation networks.
#include <cstdio>

#include "core/perf_model.h"
#include "nn/gemm.h"
#include "nn/models.h"
#include "util/table.h"

namespace {

// The two-layer network of Fig. 4 (shapes chosen to be concrete).
bnn::nn::NetworkDesc two_layer_example() {
  using bnn::nn::HwLayer;
  bnn::nn::NetworkDesc desc;
  desc.name = "fig4-two-layer";
  desc.input_shape = {8, 16, 16};
  desc.num_classes = 10;
  HwLayer l1;
  l1.label = "layer1";
  l1.in_c = 8;
  l1.in_h = 16;
  l1.in_w = 16;
  l1.out_c = 16;
  l1.kernel = 3;
  l1.pad = 1;
  l1.conv_out_h = l1.out_h = 16;
  l1.conv_out_w = l1.out_w = 16;
  l1.has_relu = true;
  l1.is_bayes_site = true;
  l1.site_index = 0;
  desc.layers.push_back(l1);
  HwLayer l2 = l1;
  l2.label = "layer2";
  l2.in_c = 16;
  l2.out_c = 16;
  l2.is_bayes_site = true;
  l2.site_index = 1;
  desc.layers.push_back(l2);
  return desc;
}

}  // namespace

int main() {
  using namespace bnn;
  std::printf("=== Fig. 4 reproduction: intermediate-layer caching ===\n\n");
  core::PerfConfig perf;  // PC=PF=64, PV=1 @ 225 MHz

  // --- The figure's own scenario: 2 layers, last-layer Bayesian, 2 samples.
  const nn::NetworkDesc example = two_layer_example();
  const core::RunStats with_ic = core::estimate_mc(example, perf, 1, 2, true);
  const core::RunStats without_ic = core::estimate_mc(example, perf, 1, 2, false);
  std::printf("Two-layer example, L=1, S=2 (exactly Fig. 4):\n");
  std::printf("  standard inference : %8lld MACs, %8lld DDR bytes\n",
              static_cast<long long>(without_ic.macs),
              static_cast<long long>(without_ic.ddr_bytes));
  std::printf("  last-layer caching : %8lld MACs, %8lld DDR bytes\n",
              static_cast<long long>(with_ic.macs),
              static_cast<long long>(with_ic.ddr_bytes));
  std::printf("  -> layer-1 executed once instead of twice; its input/output\n"
              "     round-trips to off-chip memory disappear.\n\n");

  // --- The paper's claim on the real networks:
  // compute saved = (S-1) x prefix MACs; memory accesses drop ~Lx for the
  // Bayesian suffix fraction.
  util::TextTable table("IC savings on the evaluation networks (paper Sec. III-C)");
  table.set_header({"network", "L/N", "S", "MACs w/o IC", "MACs w/ IC", "compute x",
                    "DDR w/o IC [KB]", "DDR w/ IC [KB]", "memory x"});
  util::Rng rng(1);
  nn::Model lenet = nn::make_lenet5(rng);
  nn::Model vgg = nn::make_vgg11(rng, 10, 16);
  nn::Model resnet = nn::make_resnet18(rng, 10, 8);
  for (nn::Model* model : {&lenet, &vgg, &resnet}) {
    const nn::NetworkDesc desc = model->describe();
    const int sites = desc.num_sites();
    for (int bayes_layers : {1, (2 * sites + 2) / 3}) {
      const int samples = bayes_layers == 1 ? 100 : 50;
      const core::RunStats a = core::estimate_mc(desc, perf, bayes_layers, samples, true);
      const core::RunStats b = core::estimate_mc(desc, perf, bayes_layers, samples, false);
      table.add_row({model->name(),
                     std::to_string(bayes_layers) + "/" + std::to_string(sites),
                     std::to_string(samples), std::to_string(b.macs),
                     std::to_string(a.macs),
                     util::fixed(static_cast<double>(b.macs) / a.macs, 2) + "x",
                     util::fixed(b.ddr_bytes / 1024.0, 0),
                     util::fixed(a.ddr_bytes / 1024.0, 0),
                     util::fixed(static_cast<double>(b.ddr_bytes) / a.ddr_bytes, 2) + "x"});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape check vs paper: savings are largest for small L and large S and\n"
              "fade as L approaches N; with IC the prefix is paid once, so compute\n"
              "saved equals (S-1) x prefix-MACs exactly (asserted in the test suite).\n");
  return 0;
}
