// Ablation: the PC/PF/PV parallelism trade-off behind the paper's final
// 64/64/1 choice. Sweeps the paper's hardware design space and reports the
// modelled latency, effective throughput and resource cost of each point on
// the Arria 10, marking infeasible ones.
#include <cstdio>

#include "core/perf_model.h"
#include "core/resource_model.h"
#include "nn/models.h"
#include "util/table.h"

int main() {
  using namespace bnn;
  std::printf("=== Ablation: fine-grained parallelism (PC, PF, PV) ===\n\n");

  util::Rng rng(1);
  nn::Model resnet = nn::make_resnet18(rng, 10, 8);
  const nn::NetworkDesc desc = resnet.describe();
  const nn::NetworkDesc big = nn::describe_resnet101();
  const core::FpgaDevice device = core::arria10_sx660();

  util::TextTable table(
      "ResNet-18 {L=2N/3, S=50} with IC; buffers sized for ResNet-101");
  table.set_header({"PC", "PF", "PV", "MACs/cyc", "latency [ms]", "eff. GOP/s", "DSP req",
                    "ALMs", "fits?"});
  double best_feasible_latency = 1e30;
  core::NneConfig best;
  for (int pc : core::pc_domain()) {
    for (int pf : core::pf_domain()) {
      for (int pv : core::pv_domain()) {
        core::NneConfig config;
        config.pc = pc;
        config.pf = pf;
        config.pv = pv;
        // Keep the sweep readable: only points on the efficiency frontier
        // of interest (products between 512 and 8192 MACs/cycle).
        const std::int64_t product = config.macs_per_cycle();
        if (product < 512 || product > 8192) continue;
        const core::ResourceUsage usage =
            core::estimate_resources(config, big, device, 16, 2);
        const bool ok = core::fits(usage, device);
        core::PerfConfig perf;
        perf.nne = config;
        const core::RunStats stats =
            core::estimate_mc(desc, perf, (2 * desc.num_sites() + 2) / 3, 50, true);
        table.add_row({std::to_string(pc), std::to_string(pf), std::to_string(pv),
                       std::to_string(product), util::fixed(stats.latency_ms, 3),
                       util::fixed(stats.throughput_gops(), 0),
                       std::to_string(usage.dsps_required),
                       std::to_string(usage.alms_used), ok ? "yes" : "NO"});
        if (ok && stats.latency_ms < best_feasible_latency) {
          best_feasible_latency = stats.latency_ms;
          best = config;
        }
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Best feasible point: PC=%d PF=%d PV=%d -> %.3f ms (the paper selects\n"
              "PC=PF=64, PV=1 on this device; points above 4096 MACs/cycle blow the\n"
              "ALM budget once the DSP overflow is priced in).\n",
              best.pc, best.pf, best.pv, best_feasible_latency);
  return 0;
}
