// Scenario-to-trace generator: builds a deterministic serving scenario
// (serve/scenario.h), records it through a serve::Server with the trace
// journal enabled, and leaves a .trace file any replayer can re-serve.
//
//   ./build/bench/scenario_gen [--scenario NAME|all] [--requests N] [--S N]
//                              [--screening N] [--gap-ms MS] [--timed]
//                              [--replicas R] [--threads T] [--max-batch B]
//                              [--policy block|adaptive] [--latency-target MS]
//                              [--queue-depth N] [--models N]
//                              [--out PATH | --out-dir DIR]
//
// Recording defaults to R=1/threads=1 — the canonical recording
// configuration whose traces the acceptance gate replays at every other
// R × threads × dispatch combination. --policy adaptive (with
// --latency-target and usually --queue-depth) records downgrade/reject
// outcomes and an admission trailer for shedding-replay tests.
// --models N (up to 3) records a MULTI-TENANT trace: the shared fixtures
// (cnn12, mlp49, cnn12b) published into one ModelRegistry, event r routed
// to tenant r % N, model ids journalled per record (v2 model table).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/serve_fixture.h"
#include "serve/scenario.h"
#include "serve/server.h"
#include "serve/trace.h"

namespace {

using namespace bnn;

int run_one(serve::ScenarioKind kind, serve::ScenarioSpec spec,
            serve::ServerConfig server_config, const std::string& out_path,
            bool as_fast) {
  spec.kind = kind;
  if (spec.num_models > 1 && kind == serve::ScenarioKind::mixed_shapes) {
    std::fprintf(stderr,
                 "scenario_gen: mixed_shapes reshapes stimuli for the MLP-49 "
                 "geometry and cannot be multi-tenant\n");
    return 2;
  }
  server_config.trace_path = out_path;

  const std::vector<serve::ScenarioEvent> events = serve::generate_scenario(spec);
  std::uint64_t served = 0, rejected = 0, downgraded = 0;
  if (spec.num_models > 1) {
    // Multi-tenant recording: shared fixtures in one registry, each event
    // routed to its model_index tenant. trace_workload_id stays 0 — the
    // per-record model table names every tenant's fixture.
    const bench::MultiTenantFixture multi =
        bench::make_multi_tenant_fixture(spec.num_models);
    server_config.default_model = multi.names.front();
    serve::Server server(multi.registry, bench::serve_accel_config(), server_config);
    const auto responses = serve::play_scenario(
        server, events, multi.names,
        [&multi](const serve::ScenarioEvent& event) {
          return bench::multi_fixture_image(multi, event);
        },
        as_fast);
    for (const auto& response : responses) {
      if (!response.has_value()) {
        ++rejected;
      } else if (response->shed_downgraded) {
        ++downgraded;
      } else {
        ++served;
      }
    }
  } else {
    const bench::ServeFixture fixture = kind == serve::ScenarioKind::mixed_shapes
                                            ? bench::make_mlp49_fixture()
                                            : bench::make_cnn12_fixture();
    server_config.trace_workload_id = fixture.workload_id;
    serve::Server server(core::Accelerator(fixture.qnet, bench::serve_accel_config()),
                         server_config);
    const auto responses = serve::play_scenario(
        server, events,
        [&fixture](const serve::ScenarioEvent& event) {
          return bench::fixture_image(fixture, event);
        },
        as_fast);
    for (const auto& response : responses) {
      if (!response.has_value()) {
        ++rejected;
      } else if (response->shed_downgraded) {
        ++downgraded;
      } else {
        ++served;
      }
    }
  }  // ~Server finalizes the trace

  const serve::Trace trace = serve::read_trace(out_path);
  std::printf(
      "%-22s -> %s: %zu records (%llu full, %llu downgraded, %llu rejected), "
      "%zu admission decisions\n",
      serve::scenario_kind_name(kind), out_path.c_str(), trace.records.size(),
      static_cast<unsigned long long>(served),
      static_cast<unsigned long long>(downgraded),
      static_cast<unsigned long long>(rejected), trace.admission.size());
  if (trace.records.size() != events.size()) {
    std::fprintf(stderr, "scenario_gen: trace holds %zu records for %zu events\n",
                 trace.records.size(), events.size());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario = "burst";
  std::string out_path;
  std::string out_dir = ".";
  serve::ScenarioSpec spec;
  spec.num_requests = 24;
  spec.num_samples = 4;
  spec.screening_samples = 2;
  serve::ServerConfig server_config;
  server_config.max_batch = 4;
  server_config.num_replicas = 1;
  server_config.num_threads = 1;
  bool as_fast = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc)
      scenario = argv[++i];
    else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
      spec.num_requests = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--S") == 0 && i + 1 < argc)
      spec.num_samples = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--screening") == 0 && i + 1 < argc)
      spec.screening_samples = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--gap-ms") == 0 && i + 1 < argc)
      spec.arrival_gap_ms = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "--timed") == 0)
      as_fast = false;
    else if (std::strcmp(argv[i], "--replicas") == 0 && i + 1 < argc)
      server_config.num_replicas = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      server_config.num_threads = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--max-batch") == 0 && i + 1 < argc)
      server_config.max_batch = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      const char* name = argv[++i];
      if (std::strcmp(name, "adaptive") == 0)
        server_config.overload_policy = serve::OverloadPolicy::adaptive;
      else if (std::strcmp(name, "block") == 0)
        server_config.overload_policy = serve::OverloadPolicy::block;
      else {
        std::fprintf(stderr, "scenario_gen: unknown --policy '%s'\n", name);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--latency-target") == 0 && i + 1 < argc)
      server_config.latency_target_ms = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "--queue-depth") == 0 && i + 1 < argc)
      server_config.max_queue_depth = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--models") == 0 && i + 1 < argc)
      spec.num_models = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc)
      out_dir = argv[++i];
    else {
      std::fprintf(stderr, "scenario_gen: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }

  try {
    if (scenario == "all") {
      int status = 0;
      for (const serve::ScenarioKind kind : serve::all_scenario_kinds()) {
        const std::string path = out_dir + "/scenario_" +
                                 serve::scenario_kind_name(kind) + ".trace";
        status |= run_one(kind, spec, server_config, path, as_fast);
      }
      return status;
    }
    const serve::ScenarioKind kind = serve::scenario_kind_from_name(scenario);
    if (out_path.empty())
      out_path = out_dir + "/scenario_" + serve::scenario_kind_name(kind) + ".trace";
    return run_one(kind, spec, server_config, out_path, as_fast);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "scenario_gen: %s\n", error.what());
    return 1;
  }
}
