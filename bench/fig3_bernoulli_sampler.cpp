// Fig. 3 companion bench: throughput and statistical quality of the
// LFSR-based Bernoulli sampler (128-bit 4-tap LFSRs, AND tree, SIPO, FIFO).
// google-benchmark micro-timings plus a printed quality report.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/bernoulli_sampler.h"
#include "core/lfsr.h"

namespace {

void bm_lfsr128_step(benchmark::State& state) {
  bnn::core::Lfsr lfsr = bnn::core::make_lfsr128(0x1234ull);
  for (auto _ : state) benchmark::DoNotOptimize(lfsr.step());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_lfsr128_step);

void bm_sampler_bit(benchmark::State& state) {
  bnn::core::BernoulliSamplerConfig config;
  config.p = 1.0 / static_cast<double>(state.range(0));
  bnn::core::BernoulliSampler sampler(config);
  for (auto _ : state) benchmark::DoNotOptimize(sampler.next_drop());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("p=1/" + std::to_string(state.range(0)));
}
BENCHMARK(bm_sampler_bit)->Arg(2)->Arg(4)->Arg(8);

void bm_sampler_mask_word(benchmark::State& state) {
  bnn::core::BernoulliSamplerConfig config;
  config.p = 0.25;
  config.pf = static_cast<int>(state.range(0));
  config.fifo_depth = 4;
  bnn::core::BernoulliSampler sampler(config);
  std::vector<std::uint8_t> word;
  for (auto _ : state) {
    while (!sampler.pop_word(word)) sampler.step_cycle();
    benchmark::DoNotOptimize(word.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("PF=" + std::to_string(state.range(0)));
}
BENCHMARK(bm_sampler_mask_word)->Arg(32)->Arg(64)->Arg(128);

void print_quality_report() {
  using namespace bnn::core;
  std::printf("\n=== Fig. 3 sampler quality report ===\n");
  std::printf("%-10s %-8s %-14s %-14s\n", "p", "#LFSRs", "measured-rate", "|error|");
  for (double p : {0.5, 0.25, 0.125}) {
    BernoulliSamplerConfig config;
    config.p = p;
    config.seed = 2024;
    BernoulliSampler sampler(config);
    const int n = 200000;
    int drops = 0;
    for (int i = 0; i < n; ++i) drops += sampler.next_drop() ? 1 : 0;
    const double rate = static_cast<double>(drops) / n;
    std::printf("%-10.4f %-8d %-14.5f %-14.5f\n", p, sampler.num_lfsrs(), rate,
                std::abs(rate - p));
  }
  std::printf("\nPaper context: a single 128-bit maximal LFSR clocked at 160 MHz takes\n"
              "~1500 years to exhaust its sequence; the simulator uses the same 4-tap\n"
              "register (taps 128,126,101,99), verified maximal on small widths in the\n"
              "test suite.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_quality_report();
  return 0;
}
