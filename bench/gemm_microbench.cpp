// Micro-kernel GEMM benchmark: the blocked/vectorized kernels in
// nn/gemm_kernels.h versus their plain scalar references, on the layer
// shapes the float path actually runs (VGG-class im2col GEMM, conv backward
// passes, FC forward) plus the int8 NNE dot kernels.
//
// Every row first PROVES bit-identity (memcmp of the full output, both
// accumulate modes) and only then times the two variants; a mismatch is a
// hard failure (non-zero exit), which is what the ctest smoke entry checks.
// Speedups are a single-thread property and hold on the 1-core CI
// container, unlike the thread-scaling benches.
//
//   ./build/bench/gemm_microbench [--smoke] [--repeats N] [--json PATH]
//                                 [--bitpack]
//
// --json writes a BENCH_gemm.json-style artifact so successive PRs have a
// recorded perf trajectory for the hot path. --bitpack switches to the
// packed XNOR/popcount kernel tier (quant/qplan.h): binarizable rows
// against the int8 dot_i8_zp baseline, same hard bit-identity gate (the
// bench.bitpack_smoke ctest entry).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "nn/bitpack_kernels.h"
#include "nn/gemm_kernels.h"
#include "quant/qplan.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

using namespace bnn;
namespace kernels = nn::kernels;

double best_seconds(int repeats, const std::function<void()>& body) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    util::Stopwatch watch;
    body();
    best = std::min(best, watch.elapsed_seconds());
  }
  return best;
}

using GemmFn = void (*)(int, int, int, const float*, const float*, float*, bool);

struct FloatCase {
  const char* name;     // which layer this shape comes from
  const char* variant;  // gemm / gemm_at / gemm_bt
  GemmFn scalar;
  GemmFn blocked;
  int m, n, k;
};

struct Result {
  std::string name, variant;
  int m, n, k;
  double scalar_ms, fast_ms;
  bool bit_identical;
  double speedup() const { return fast_ms > 0.0 ? scalar_ms / fast_ms : 0.0; }
};

std::vector<float> random_matrix(std::size_t elems, util::Rng& rng) {
  std::vector<float> v(elems);
  for (float& x : v) x = static_cast<float>(rng.normal());
  return v;
}

Result run_float_case(const FloatCase& fc, int repeats) {
  util::Rng rng(fc.m * 7919 + fc.n * 131 + fc.k);
  // gemm_at stores A as [K, M]; the element count is the same either way.
  const std::vector<float> a = random_matrix(static_cast<std::size_t>(fc.m) * fc.k, rng);
  const std::vector<float> b = random_matrix(static_cast<std::size_t>(fc.k) * fc.n, rng);
  const std::size_t out = static_cast<std::size_t>(fc.m) * fc.n;
  std::vector<float> c_scalar(out), c_blocked(out);

  // Bit-identity gate, both accumulate modes, before any timing.
  bool identical = true;
  for (const bool accumulate : {false, true}) {
    std::fill(c_scalar.begin(), c_scalar.end(), 0.25f);
    std::fill(c_blocked.begin(), c_blocked.end(), 0.25f);
    fc.scalar(fc.m, fc.n, fc.k, a.data(), b.data(), c_scalar.data(), accumulate);
    fc.blocked(fc.m, fc.n, fc.k, a.data(), b.data(), c_blocked.data(), accumulate);
    identical = identical && std::memcmp(c_scalar.data(), c_blocked.data(),
                                         out * sizeof(float)) == 0;
  }

  const double scalar_s = best_seconds(repeats, [&] {
    fc.scalar(fc.m, fc.n, fc.k, a.data(), b.data(), c_scalar.data(), false);
  });
  const double fast_s = best_seconds(repeats, [&] {
    fc.blocked(fc.m, fc.n, fc.k, a.data(), b.data(), c_blocked.data(), false);
  });
  return {fc.name, fc.variant, fc.m, fc.n, fc.k, scalar_s * 1e3, fast_s * 1e3, identical};
}

// int8 NNE inner product: one full output-filter sweep of a linear layer
// (rows x len dots), scalar loop vs kernels::dot_i8_zp.
Result run_int8_case(int rows, int len, int repeats) {
  util::Rng rng(rows * 1009 + len);
  std::vector<std::int8_t> x(static_cast<std::size_t>(len));
  std::vector<std::int8_t> w(static_cast<std::size_t>(rows) * len);
  for (auto& v : x) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  const std::int32_t zp = -3;

  std::vector<std::int32_t> out_scalar(static_cast<std::size_t>(rows)),
      out_kernel(static_cast<std::size_t>(rows));
  const auto scalar_sweep = [&] {
    for (int f = 0; f < rows; ++f) {
      std::int32_t acc = 0;
      const std::int8_t* wr = w.data() + static_cast<std::size_t>(f) * len;
      for (int t = 0; t < len; ++t)
        acc += (static_cast<std::int32_t>(x[static_cast<std::size_t>(t)]) - zp) *
               static_cast<std::int32_t>(wr[t]);
      out_scalar[static_cast<std::size_t>(f)] = acc;
    }
  };
  const auto kernel_sweep = [&] {
    for (int f = 0; f < rows; ++f)
      out_kernel[static_cast<std::size_t>(f)] =
          kernels::dot_i8_zp(x.data(), w.data() + static_cast<std::size_t>(f) * len, len, zp);
  };
  scalar_sweep();
  kernel_sweep();
  const bool identical = out_scalar == out_kernel;

  // One sweep is too short to time; batch enough sweeps per measurement.
  const int inner = std::max(1, 20'000'000 / (rows * len));
  const double scalar_s = best_seconds(repeats, [&] {
    for (int i = 0; i < inner; ++i) scalar_sweep();
  });
  const double kernel_s = best_seconds(repeats, [&] {
    for (int i = 0; i < inner; ++i) kernel_sweep();
  });
  return {"nne linear tile", "dot_i8_zp", rows, 1, len, scalar_s * 1e3, kernel_s * 1e3,
          identical};
}

// Bit-packed kernel tier: one output-filter sweep of a binarizable linear
// layer (rows x len dots), the int8 dot_i8_zp baseline vs pack-once +
// packed_row_dot. Activation packing runs INSIDE the timed sweep — the real
// path packs each input once and amortizes it over all filters, and so does
// this. `ternary` adds zero weights (the AND2 path); without it every row
// is zero-free and the plan takes the single-XOR path.
Result run_bitpack_case(const char* variant, int rows, int len, bool ternary, int repeats) {
  util::Rng rng(rows * 2029 + len * 7 + (ternary ? 1 : 0));
  quant::QLayer layer;
  layer.geom.op = nn::HwLayer::Op::linear;
  layer.geom.in_c = len;
  layer.geom.out_c = rows;
  layer.weights.resize(static_cast<std::size_t>(rows) * len);
  const std::int8_t mag = 5;
  for (auto& w : layer.weights) {
    const int pick = rng.uniform_int(0, ternary ? 2 : 1);
    w = static_cast<std::int8_t>(pick == 0 ? -mag : pick == 1 ? mag : 0);
  }
  const quant::LayerExecPlan plan = quant::build_layer_exec_plan(layer);
  if (!plan.weights_binarizable || plan.pure_binary == ternary) {
    std::fprintf(stderr, "FATAL: bitpack bench layer did not plan as intended\n");
    std::exit(1);
  }

  const std::int8_t lo = -7, hi = 9;
  const std::int32_t zp = -3;
  std::vector<std::int8_t> x(static_cast<std::size_t>(len));
  for (auto& v : x) v = rng.uniform_int(0, 1) != 0 ? hi : lo;

  std::vector<std::int32_t> out_i8(static_cast<std::size_t>(rows)),
      out_packed(static_cast<std::size_t>(rows));
  const auto int8_sweep = [&] {
    for (int f = 0; f < rows; ++f)
      out_i8[static_cast<std::size_t>(f)] =
          kernels::dot_i8_zp(x.data(), layer.weight_row(f), len, zp);
  };
  std::vector<std::uint64_t> xbits(static_cast<std::size_t>(plan.words));
  const auto packed_sweep = [&] {
    const std::int32_t x_pop = kernels::pack_eq_bits(x.data(), len, hi, xbits.data());
    const std::int32_t base = lo - zp;
    const std::int32_t delta = static_cast<std::int32_t>(hi) - lo;
    for (int f = 0; f < rows; ++f)
      out_packed[static_cast<std::size_t>(f)] =
          quant::packed_row_dot(plan, f, xbits.data(), x_pop, base, delta);
  };
  int8_sweep();
  packed_sweep();
  const bool identical = out_i8 == out_packed;

  const int inner = std::max(1, 20'000'000 / (rows * len));
  const double i8_s = best_seconds(repeats, [&] {
    for (int i = 0; i < inner; ++i) int8_sweep();
  });
  const double packed_s = best_seconds(repeats, [&] {
    for (int i = 0; i < inner; ++i) packed_sweep();
  });
  return {"nne binarizable linear", variant, rows, 1, len, i8_s * 1e3, packed_s * 1e3,
          identical};
}

void write_json(const char* path, bool smoke, const std::vector<Result>& results) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "gemm_microbench: cannot open %s for writing\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"gemm_microbench\",\n  \"smoke\": %s,\n  \"rows\": [\n",
               smoke ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"variant\": \"%s\", \"m\": %d, \"n\": %d, "
                 "\"k\": %d, \"scalar_ms\": %.4f, \"blocked_ms\": %.4f, "
                 "\"speedup\": %.3f, \"bit_identical\": %s}%s\n",
                 r.name.c_str(), r.variant.c_str(), r.m, r.n, r.k, r.scalar_ms, r.fast_ms,
                 r.speedup(), r.bit_identical ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool bitpack = false;
  int repeats = 3;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strcmp(argv[i], "--bitpack") == 0)
      bitpack = true;
    else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc)
      repeats = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  if (bitpack) {
    // The binarizable-layer tier: the VGG-class conv-as-dot shape
    // (128 filters x 1152 terms) both zero-free (XOR path) and ternary
    // (AND2 path), plus an odd-length row that exercises the partial tail
    // word. The smoke keeps the VGG shape — the >=4x headline claim is
    // checked on exactly the layer class the paper binarizes.
    std::vector<Result> results;
    results.push_back(run_bitpack_case("bitpack_xor", 128, 1152, false, repeats));
    results.push_back(run_bitpack_case("bitpack_ternary", 128, 1152, true, repeats));
    results.push_back(run_bitpack_case("bitpack_xor", 16, 300, false, repeats));
    if (!smoke) {
      results.push_back(run_bitpack_case("bitpack_xor", 512, 4096, false, repeats));
      results.push_back(run_bitpack_case("bitpack_ternary", 512, 4096, true, repeats));
    }

    util::TextTable table(
        "Bit-packed XNOR/popcount tier — packed vs int8 dot (single thread)");
    table.set_header({"shape (layer)", "variant", "rows", "n", "terms", "int8 ms",
                      "packed ms", "speedup", "bit-identical"});
    bool all_identical = true;
    for (const Result& r : results) {
      all_identical = all_identical && r.bit_identical;
      table.add_row({r.name, r.variant, std::to_string(r.m), std::to_string(r.n),
                     std::to_string(r.k), util::fixed(r.scalar_ms, 3),
                     util::fixed(r.fast_ms, 3), util::fixed(r.speedup(), 2) + "x",
                     r.bit_identical ? "yes" : "NO"});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf(
        "Reading the table: weights in {-W, 0, +W} collapse the int8 dot to\n"
        "word-level popcounts (64 terms per XOR+POPCNT); the activation plane\n"
        "is packed once per input and amortized over all filters. The packed\n"
        "accumulator equals dot_i8_zp exactly (integer identity, hard-checked\n"
        "above), so the tier changes host speed only — never a bit of output.\n");

    if (json_path != nullptr) write_json(json_path, smoke, results);
    if (!all_identical) {
      std::fprintf(stderr, "FATAL: packed dot diverged from the int8 reference\n");
      return 1;
    }
    return 0;
  }

  // Layer-derived shapes. The VGG-class row is the reduced VGG-11's widest
  // im2col GEMM: out_c x (out_h*out_w) x (in_c*3*3). Smoke shapes keep the
  // same remainder structure (non-multiples of the 4x16 register block) at
  // a fraction of the FLOPs.
  std::vector<FloatCase> cases;
  if (smoke) {
    cases = {
        {"conv fwd (smoke)", "gemm", kernels::gemm_scalar, kernels::gemm_blocked, 18, 50, 37},
        {"conv bwd dcol (smoke)", "gemm_at", kernels::gemm_at_scalar, kernels::gemm_at_blocked,
         37, 50, 18},
        {"fc fwd (smoke)", "gemm_bt", kernels::gemm_bt_scalar, kernels::gemm_bt_blocked, 9, 21,
         130},
    };
  } else {
    cases = {
        {"vgg conv fwd", "gemm", kernels::gemm_scalar, kernels::gemm_blocked, 128, 1024, 1152},
        {"vgg conv bwd dW", "gemm_bt", kernels::gemm_bt_scalar, kernels::gemm_bt_blocked, 128,
         1152, 1024},
        {"vgg conv bwd dcol", "gemm_at", kernels::gemm_at_scalar, kernels::gemm_at_blocked,
         1152, 1024, 128},
        {"fc fwd", "gemm_bt", kernels::gemm_bt_scalar, kernels::gemm_bt_blocked, 32, 512, 1024},
    };
  }

  std::vector<Result> results;
  for (const FloatCase& fc : cases) results.push_back(run_float_case(fc, repeats));
  results.push_back(smoke ? run_int8_case(16, 300, repeats)
                          : run_int8_case(128, 1152, repeats));

  util::TextTable table("GEMM micro-kernels — blocked vs scalar reference (single thread)");
  table.set_header({"shape (layer)", "variant", "m", "n", "k", "scalar ms", "blocked ms",
                    "speedup", "bit-identical"});
  bool all_identical = true;
  for (const Result& r : results) {
    all_identical = all_identical && r.bit_identical;
    table.add_row({r.name, r.variant, std::to_string(r.m), std::to_string(r.n),
                   std::to_string(r.k), util::fixed(r.scalar_ms, 3), util::fixed(r.fast_ms, 3),
                   util::fixed(r.speedup(), 2) + "x", r.bit_identical ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading the table: the blocked kernels hold a small output tile in\n"
      "registers across L1-resident k-panels; each c[i,j] still sums its\n"
      "k-terms in ascending order, so outputs are bit-identical to the scalar\n"
      "loops (hard-checked above). The speedup is single-thread and composes\n"
      "with the across-sample thread parallelism of predict_batch.\n");

  if (json_path != nullptr) write_json(json_path, smoke, results);
  if (!all_identical) {
    std::fprintf(stderr, "FATAL: blocked kernel output diverged from the scalar reference\n");
    return 1;
  }
  return 0;
}
