// Reproduces Table III: FPGA (with / without IC) vs CPU vs GPU latency for
// the two {L, S} rows per network: {1, 100} and {2N/3, 50}.
//
// Shape targets from the paper: the IC speedup is large at {1, 100} and
// small at {2N/3, 50}; the FPGA with IC beats CPU by up to ~15x and GPU by
// up to ~8x; on LeNet-5 the last-layer-dominated runtime mutes IC's win.
#include <cstdio>

#include "baseline/device_model.h"
#include "core/perf_model.h"
#include "nn/models.h"
#include "util/table.h"

int main() {
  using namespace bnn;
  std::printf("=== Table III reproduction: FPGA / CPU / GPU latency [ms] ===\n\n");

  core::PerfConfig perf;  // PC=64, PF=64, PV=1 @ 225 MHz
  const baseline::DeviceModel cpu = baseline::cpu_i9_9900k();
  const baseline::DeviceModel gpu = baseline::gpu_rtx2080_super();

  util::Rng rng(1);
  nn::Model lenet = nn::make_lenet5(rng);
  nn::Model vgg = nn::make_vgg11(rng, 10, 16);
  nn::Model resnet = nn::make_resnet18(rng, 10, 8);

  util::TextTable table;
  table.set_header({"network", "{L, S}", "FPGA w/ IC", "FPGA w/o IC", "CPU", "GPU",
                    "IC speedup", "vs CPU", "vs GPU"});
  for (nn::Model* model : {&lenet, &vgg, &resnet}) {
    const nn::NetworkDesc desc = model->describe();
    const int sites = desc.num_sites();
    const std::pair<int, int> rows[2] = {{1, 100}, {(2 * sites + 2) / 3, 50}};
    for (const auto& [bayes_layers, samples] : rows) {
      const double with_ic =
          core::estimate_mc(desc, perf, bayes_layers, samples, true).latency_ms;
      const double without_ic =
          core::estimate_mc(desc, perf, bayes_layers, samples, false).latency_ms;
      const double cpu_ms = baseline::device_latency_ms(desc, cpu, bayes_layers, samples);
      const double gpu_ms = baseline::device_latency_ms(desc, gpu, bayes_layers, samples);
      table.add_row({model->name(),
                     "{" + std::to_string(bayes_layers) + ", " + std::to_string(samples) + "}",
                     util::fixed(with_ic, 2), util::fixed(without_ic, 2),
                     util::fixed(cpu_ms, 2), util::fixed(gpu_ms, 2),
                     util::fixed(without_ic / with_ic, 2) + "x",
                     util::fixed(cpu_ms / with_ic, 1) + "x",
                     util::fixed(gpu_ms / with_ic, 1) + "x"});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Paper's Table III for reference [ms]:\n");
  std::printf("  LeNet-5   {1,100}: FPGA 13.73 / 14.38, CPU 11.17, GPU 5.81\n");
  std::printf("  LeNet-5   {2N/3,50}: FPGA 7.16 / 7.20, CPU 12.02, GPU 6.07\n");
  std::printf("  VGG-11    {1,100}: FPGA 0.76 / 57.3, CPU 11.76, GPU 6.33\n");
  std::printf("  VGG-11    {2N/3,50}: FPGA 21.52 / 28.67, CPU 55.94, GPU 30.09\n");
  std::printf("  ResNet-18 {1,100}: FPGA 1.22 / 44.97, CPU 13.96, GPU 7.05\n");
  std::printf("  ResNet-18 {2N/3,50}: FPGA 18.90 / 22.48, CPU 131.41, GPU 65.90\n\n");
  std::printf("Shape check: IC speedup collapses from {1,100} to {2N/3,50} on VGG-11\n"
              "and ResNet-18 but is negligible on LeNet-5's FC-dominated suffix; the\n"
              "FPGA-with-IC column wins against both baselines on the conv networks.\n");
  return 0;
}
