// Ablation (extension): the three BNN-acceleration philosophies of the
// paper's Table IV compared FUNCTIONALLY on one task — same data, same
// 3-layer-MLP budget:
//
//   MCD + IC (this paper) : filter-wise Bernoulli masks, S passes of the
//                           Bayesian suffix, Bernoulli sampler in hardware
//   VIBNN-style           : Gaussian weight posterior, every weight redrawn
//                           per sample from CLT Gaussian RNGs
//   BYNQNet-style         : quadratic activations, closed-form moment
//                           propagation, no sampling at all
//
// Reported: accuracy, noise aPE, and each scheme's hardware-relevant
// sampling cost per MC sample (random bits / RNG draws).
#include <cstdio>

#include "baseline/bynqnet_model.h"
#include "baseline/vibnn_model.h"
#include "bayes/predictive.h"
#include "core/gaussian_sampler.h"
#include "data/synth.h"
#include "metrics/metrics.h"
#include "nn/models.h"
#include "train/trainer.h"
#include "util/table.h"

int main() {
  using namespace bnn;
  std::printf("=== Ablation: MCD vs VIBNN-style vs BYNQNet-style ===\n\n");

  // Shared task: synthetic digits downsampled to 7x7 (49 features).
  util::Rng data_rng(81);
  data::Dataset digits = data::make_synth_digits(900, data_rng);
  nn::Tensor flat({digits.size(), 49, 1, 1});
  for (int n = 0; n < digits.size(); ++n)
    for (int y = 0; y < 7; ++y)
      for (int x = 0; x < 7; ++x)
        flat.v4(n, y * 7 + x, 0, 0) = digits.images().v4(n, 0, 4 * y + 2, 4 * x + 2);
  data::Dataset dataset(std::move(flat), digits.labels(), 10);
  auto [train_set, test_set] = dataset.split(750);
  util::Rng noise_rng(82);
  data::Dataset noise = data::make_gaussian_noise(150, train_set, noise_rng);
  const int hidden = 64;
  const int samples = 30;

  // --- MCD (this paper's approach), trained deterministically.
  util::Rng mcd_rng(83);
  nn::Model mcd = nn::make_mlp3(mcd_rng, 49, hidden, 10, nn::MlpActivation::relu, true);
  mcd.set_bayesian_last(0);
  train::TrainConfig train_config;
  train_config.epochs = 6;
  train_config.batch_size = 32;
  train::fit(mcd, train_set, train_config);
  mcd.set_bayesian_last(mcd.num_sites());
  mcd.reseed_sites(84);
  bayes::PredictiveOptions mcd_options;
  mcd_options.num_samples = samples;
  const nn::Tensor mcd_test = bayes::mc_predict(mcd, test_set.images(), mcd_options);
  mcd.reseed_sites(85);
  const nn::Tensor mcd_noise = bayes::mc_predict(mcd, noise.images(), mcd_options);
  // Bernoulli bits per sample: one per masked unit (2 hidden layers).
  const std::int64_t mcd_bits = 2 * hidden;

  // --- VIBNN-style Gaussian-weight BNN.
  baseline::VibnnConfig vibnn_config;
  vibnn_config.hidden = hidden;
  baseline::VibnnBnn vibnn(49, 10, vibnn_config);
  vibnn.fit(train_set, 6, 0.05);
  core::GaussianSamplerConfig grng_config;
  grng_config.seed = 86;
  core::GaussianSampler grng(grng_config);
  const nn::Tensor vibnn_test = vibnn.mc_predict(test_set.images(), samples, grng);
  const nn::Tensor vibnn_noise = vibnn.mc_predict(noise.images(), samples, grng);
  const std::int64_t vibnn_draws = vibnn.num_weights();  // per sample!

  // --- BYNQNet-style sampling-free moment propagation.
  baseline::BynqnetConfig bynq_config;
  bynq_config.hidden = hidden;
  baseline::BynqNet bynq(49, 10, bynq_config);
  bynq.fit(train_set, 10, 0.05);
  util::Rng out_rng(87);
  const nn::Tensor bynq_test = bynq.predictive(test_set.images(), samples, out_rng);
  const nn::Tensor bynq_noise = bynq.predictive(noise.images(), samples, out_rng);

  util::TextTable table("same task, same 49-64-64-10 MLP budget, S=30");
  table.set_header({"approach", "accuracy [%]", "noise aPE [nats]", "RNG cost / sample",
                    "supports conv/pool/res?"});
  table.add_row({"MCD + IC (paper)",
                 util::fixed(metrics::accuracy(mcd_test, test_set.labels()) * 100.0, 1),
                 util::fixed(metrics::average_predictive_entropy(mcd_noise), 3),
                 std::to_string(mcd_bits) + " Bernoulli bits", "yes (this work)"});
  table.add_row({"VIBNN-style",
                 util::fixed(metrics::accuracy(vibnn_test, test_set.labels()) * 100.0, 1),
                 util::fixed(metrics::average_predictive_entropy(vibnn_noise), 3),
                 std::to_string(vibnn_draws) + " Gaussian draws", "no (FC only)"});
  table.add_row({"BYNQNet-style",
                 util::fixed(metrics::accuracy(bynq_test, test_set.labels()) * 100.0, 1),
                 util::fixed(metrics::average_predictive_entropy(bynq_noise), 3),
                 "0 (closed form)", "no (FC + quadratic only)"});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Why the paper wins on generality: the MCD scheme needs only %lld random\n"
              "bits per sample (vs %lld Gaussian draws for weight-sampling designs)\n"
              "and composes with convolutions, pooling and residual connections —\n"
              "the comparators are locked to small fully-connected networks.\n",
              static_cast<long long>(mcd_bits), static_cast<long long>(vibnn_draws));
  return 0;
}
