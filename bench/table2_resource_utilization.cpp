// Reproduces Table II: resource utilization of the accelerator on the
// Arria 10 SX660 at the paper's final configuration (PC=64, PF=64, PV=1,
// 225 MHz). The model's mapped numbers are printed against the published
// row; calibration constants are documented in core/resource_model.h.
#include <cstdio>

#include "core/resource_model.h"
#include "nn/models.h"
#include "util/table.h"

int main() {
  using namespace bnn;
  std::printf("=== Table II reproduction: resource utilization (Arria 10 SX660) ===\n\n");

  core::NneConfig config;  // PC=64, PF=64, PV=1 @ 225 MHz (paper final design)
  const core::FpgaDevice device = core::arria10_sx660();

  // Buffers are sized for the largest workload the accelerator must host;
  // the paper runs up to ResNet-101.
  const nn::NetworkDesc desc = nn::describe_resnet101();
  const core::ResourceUsage usage =
      core::estimate_resources(config, desc, device, /*sampler_fifo_depth=*/16,
                               /*num_lfsrs=*/2);

  auto utilization = [](double used, double total) {
    return util::fixed(100.0 * used / total, 0) + "%";
  };

  util::TextTable table("model vs paper (paper row from Table II)");
  table.set_header({"Resource", "ALMs", "Registers", "DSPs", "M20K"});
  table.add_row({"modelled used", std::to_string(usage.alms_used),
                 std::to_string(usage.registers_used), std::to_string(usage.dsps_used),
                 std::to_string(usage.m20k_used)});
  table.add_row({"paper used", "303,913", "889,869", "1,473", "2,334"});
  table.add_row({"device total", std::to_string(device.alms),
                 std::to_string(device.registers), std::to_string(device.dsps),
                 std::to_string(device.m20k_blocks)});
  table.add_row({"modelled util",
                 utilization(static_cast<double>(usage.alms_used), static_cast<double>(device.alms)),
                 utilization(static_cast<double>(usage.registers_used),
                             static_cast<double>(device.registers)),
                 utilization(usage.dsps_used, device.dsps),
                 utilization(usage.m20k_used, device.m20k_blocks)});
  table.add_row({"paper util", "71%", "52%", "97%", "86%"});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Model internals:\n");
  std::printf("  int8 multipliers (PC*PF*PV)      : %lld\n",
              static_cast<long long>(usage.multipliers));
  std::printf("  DSPs by the paper's formula      : %d (PC*PF*PV/2)\n", usage.dsps_required);
  std::printf("  multipliers spilled to ALM logic : %lld (DSP demand exceeds the device,\n"
              "                                     which is why Table II shows 97%% DSP\n"
              "                                     alongside 71%% ALM usage)\n",
              static_cast<long long>(usage.soft_multipliers));
  std::printf("  on-chip memory bits              : in=%lld out=%lld weight=%lld ic=%lld "
              "fifo=%lld\n",
              static_cast<long long>(usage.mem_bits_input),
              static_cast<long long>(usage.mem_bits_output),
              static_cast<long long>(usage.mem_bits_weight),
              static_cast<long long>(usage.mem_bits_ic_cache),
              static_cast<long long>(usage.mem_bits_fifo));
  std::printf("  fits(device)                     : %s\n\n",
              core::fits(usage, device) ? "yes" : "NO");

  // The paper's memory formulas verbatim, on the evaluation networks.
  util::TextTable formulas("paper Sec. IV-B formulas per network (DW = 8 bit)");
  formulas.set_header({"network", "MEM_in [bits]", "MEM_weight [bits]", "MEM_fifo [bits]"});
  util::Rng rng(1);
  nn::Model lenet = nn::make_lenet5(rng);
  nn::Model vgg = nn::make_vgg11(rng, 10, 16);
  nn::Model resnet = nn::make_resnet18(rng, 10, 8);
  for (nn::Model* model : {&lenet, &vgg, &resnet}) {
    const nn::NetworkDesc d = model->describe();
    formulas.add_row({model->name(), std::to_string(d.max_input_elems() * 8),
                      std::to_string(d.max_filter_weight_elems() * config.pf * 8),
                      std::to_string(16 * config.pf * 8)});
  }
  std::printf("%s", formulas.to_string().c_str());
  return 0;
}
